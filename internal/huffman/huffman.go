// Package huffman implements canonical Huffman coding over a byte alphabet:
// the classic entropy stage of Gzip's DEFLATE and of G-SQZ, the paper's
// §III.B reference for "Huffman-coding to compress data without altering
// the sequence" (Tembe et al., joint base+quality symbols).
//
// Code construction is the standard two-queue merge; codes are then
// canonicalized (ordered by length, then symbol) so the decoder can be
// rebuilt from code lengths alone — only the length table travels.
package huffman

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/srl-nuces/ctxdna/internal/bitio"
)

// MaxCodeLen bounds code lengths; 32 is far beyond any byte-alphabet need
// but keeps the decoder tables small and the bit I/O in uint64 range.
const MaxCodeLen = 32

// Code is one symbol's canonical codeword.
type Code struct {
	Bits uint32 // codeword, MSB-aligned to Len
	Len  uint8  // length in bits; 0 = symbol absent
}

// Table maps each byte symbol to its codeword.
type Table struct {
	codes [256]Code
}

type hNode struct {
	freq        int64
	sym         int // -1 for internal
	left, right *hNode
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(a, b int) bool {
	if h[a].freq != h[b].freq {
		return h[a].freq < h[b].freq
	}
	return h[a].sym < h[b].sym // deterministic tie-break
}
func (h hHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *hHeap) Push(x any)   { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical code for the given symbol frequencies.
// Symbols with zero frequency get no code. At least one symbol must have a
// positive frequency.
func Build(freqs *[256]int64) (*Table, error) {
	var h hHeap
	for s, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency for symbol %d", s)
		}
		if f > 0 {
			h = append(h, &hNode{freq: f, sym: s})
		}
	}
	if len(h) == 0 {
		return nil, fmt.Errorf("huffman: no symbols")
	}
	if len(h) == 1 {
		// Degenerate alphabet: give the lone symbol a 1-bit code.
		t := &Table{}
		t.codes[h[0].sym] = Code{Bits: 0, Len: 1}
		return t, nil
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hNode)
		b := heap.Pop(&h).(*hNode)
		heap.Push(&h, &hNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	root := h[0]
	var lens [256]uint8
	var walk func(n *hNode, depth uint8) error
	walk = func(n *hNode, depth uint8) error {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1
			}
			if depth > MaxCodeLen {
				return fmt.Errorf("huffman: code length %d exceeds max %d", depth, MaxCodeLen)
			}
			lens[n.sym] = depth
			return nil
		}
		if err := walk(n.left, depth+1); err != nil {
			return err
		}
		return walk(n.right, depth+1)
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	return FromLengths(&lens)
}

// FromLengths builds the canonical table from code lengths (the decoder's
// entry point: lengths are all that travels in the stream header).
func FromLengths(lens *[256]uint8) (*Table, error) {
	type sl struct {
		sym int
		l   uint8
	}
	var present []sl
	for s, l := range lens {
		if l == 0 {
			continue
		}
		if l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: length %d exceeds max", l)
		}
		present = append(present, sl{sym: s, l: l})
	}
	if len(present) == 0 {
		return nil, fmt.Errorf("huffman: empty length table")
	}
	sort.Slice(present, func(a, b int) bool {
		if present[a].l != present[b].l {
			return present[a].l < present[b].l
		}
		return present[a].sym < present[b].sym
	})
	// Kraft check and canonical assignment.
	t := &Table{}
	code := uint32(0)
	prevLen := present[0].l
	for _, e := range present {
		code <<= e.l - prevLen
		prevLen = e.l
		if e.l < 32 && code >= 1<<e.l {
			return nil, fmt.Errorf("huffman: length table violates Kraft inequality")
		}
		t.codes[e.sym] = Code{Bits: code, Len: e.l}
		code++
	}
	return t, nil
}

// CodeOf returns the symbol's codeword (Len 0 if absent).
func (t *Table) CodeOf(sym byte) Code { return t.codes[sym] }

// Lengths returns the code-length table for serialization.
func (t *Table) Lengths() [256]uint8 {
	var lens [256]uint8
	for s, c := range t.codes {
		lens[s] = c.Len
	}
	return lens
}

// Encode writes sym's codeword to w. Encoding an absent symbol is an error.
func (t *Table) Encode(w *bitio.Writer, sym byte) error {
	c := t.codes[sym]
	if c.Len == 0 {
		return fmt.Errorf("huffman: symbol %d has no code", sym)
	}
	w.WriteBits(uint64(c.Bits), uint(c.Len))
	return nil
}

// Decoder decodes canonical codewords bit by bit using first-code tables.
type Decoder struct {
	// For each length l: firstCode[l] is the smallest code of that length,
	// and offset[l] indexes into syms where codes of length l start.
	firstCode [MaxCodeLen + 1]uint32
	count     [MaxCodeLen + 1]int
	offset    [MaxCodeLen + 1]int
	syms      []byte
	maxLen    uint8
}

// NewDecoder builds a decoder from the table.
func NewDecoder(t *Table) *Decoder {
	d := &Decoder{}
	for s := 0; s < 256; s++ {
		if l := t.codes[s].Len; l > 0 {
			d.count[l]++
			if l > d.maxLen {
				d.maxLen = l
			}
		}
	}
	total := 0
	for l := 1; l <= int(d.maxLen); l++ {
		d.offset[l] = total
		total += d.count[l]
	}
	d.syms = make([]byte, total)
	idx := make([]int, MaxCodeLen+1)
	// Symbols sorted by (len, sym) — same order as canonical assignment.
	for s := 0; s < 256; s++ {
		if l := t.codes[s].Len; l > 0 {
			d.syms[d.offset[l]+idx[l]] = byte(s)
			idx[l]++
		}
	}
	code := uint32(0)
	for l := uint8(1); l <= d.maxLen; l++ {
		code <<= 1
		d.firstCode[l] = code
		code += uint32(d.count[l])
	}
	return d
}

// Decode reads one codeword from r.
func (d *Decoder) Decode(r *bitio.Reader) (byte, error) {
	var code uint32
	for l := uint8(1); l <= d.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(bit)
		if d.count[l] > 0 && code-d.firstCode[l] < uint32(d.count[l]) {
			return d.syms[d.offset[l]+int(code-d.firstCode[l])], nil
		}
	}
	return 0, fmt.Errorf("huffman: invalid codeword")
}

// CostBits returns the encoded size in bits of a frequency vector under the
// table — used to compare against entropy in tests.
func (t *Table) CostBits(freqs *[256]int64) int64 {
	var total int64
	for s, f := range freqs {
		total += f * int64(t.codes[s].Len)
	}
	return total
}
