package core

import "testing"

func TestLabelNormalizedBalancesScales(t *testing.T) {
	// Codec "fast" wins on time; codec "lean" wins on RAM. Raw Eq. 1 with a
	// 50:50 weight collapses to the RAM ordering (KB >> ms); the normalized
	// variant must actually trade the two off.
	ms := []Measurement{
		{Codec: "fast", CompressMS: 10, DecompressMS: 10, UploadMS: 10, DownloadMS: 10, RAMBytes: 100 << 20},
		{Codec: "lean", CompressMS: 4000, DecompressMS: 4000, UploadMS: 4000, DownloadMS: 4000, RAMBytes: 80 << 20},
	}
	w := RAMTimeWeights(0.5, 0.5)
	raw, err := Label(ms, w)
	if err != nil {
		t.Fatal(err)
	}
	if raw != "lean" {
		t.Fatalf("raw Eq.1 should collapse to RAM ordering, got %q", raw)
	}
	norm, err := LabelNormalized(ms, w)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized: fast is 0.0 on time and 1.0 on RAM (0.5 total); lean is
	// 1.0 on time and 0.0 on RAM (2.0 time terms weighted) — fast wins.
	if norm != "fast" {
		t.Fatalf("normalized Eq.1 should let the huge time gap win, got %q", norm)
	}
}

func TestLabelNormalizedAgreesOnSingleMetric(t *testing.T) {
	ms := []Measurement{
		{Codec: "a", CompressMS: 50, RAMBytes: 1},
		{Codec: "b", CompressMS: 20, RAMBytes: 1},
		{Codec: "c", CompressMS: 90, RAMBytes: 1},
	}
	raw, _ := Label(ms, CompressTimeOnlyWeights())
	norm, err := LabelNormalized(ms, CompressTimeOnlyWeights())
	if err != nil {
		t.Fatal(err)
	}
	if raw != norm || norm != "b" {
		t.Fatalf("single-metric labels diverge: raw %q norm %q", raw, norm)
	}
}

func TestLabelNormalizedDegenerate(t *testing.T) {
	if _, err := LabelNormalized(nil, TimeOnlyWeights()); err == nil {
		t.Fatal("empty list accepted")
	}
	// All-tied metrics: first codec wins (stable).
	ms := []Measurement{{Codec: "x", CompressMS: 5}, {Codec: "y", CompressMS: 5}}
	got, err := LabelNormalized(ms, TimeOnlyWeights())
	if err != nil || got != "x" {
		t.Fatalf("tie: got %q, %v", got, err)
	}
}
