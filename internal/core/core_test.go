package core

import (
	"strings"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

func TestGatherContext(t *testing.T) {
	vm := cloud.VM{RAMMB: 2048, CPUMHz: 2100, BandwidthMbps: 10}
	ctx := GatherContext(vm, 51200)
	if ctx.FileSizeKB != 50 || ctx.RAMMB != 2048 || ctx.CPUMHz != 2100 || ctx.BandwidthMbps != 10 {
		t.Fatalf("ctx = %+v", ctx)
	}
	feats := ctx.Features()
	if len(feats) != len(FeatureNames) {
		t.Fatalf("features %d names %d", len(feats), len(FeatureNames))
	}
}

func TestWeightsScore(t *testing.T) {
	m := Measurement{
		CompressMS: 10, DecompressMS: 20, UploadMS: 30, DownloadMS: 40,
		RAMBytes: 2 << 20,
	}
	if got := TimeOnlyWeights().Score(m); got != 100 {
		t.Errorf("time-only score = %v, want 100", got)
	}
	if got := RAMOnlyWeights().Score(m); got != 2048 {
		t.Errorf("ram-only score = %v, want 2048 (KB)", got)
	}
	mixed := RAMTimeWeights(0.6, 0.4)
	want := 0.4*100 + 0.6*2048
	if got := mixed.Score(m); got != want {
		t.Errorf("mixed score = %v, want %v", got, want)
	}
	if m.TotalTimeMS() != 100 {
		t.Errorf("TotalTimeMS = %v", m.TotalTimeMS())
	}
}

func TestLabelArgmin(t *testing.T) {
	ms := []Measurement{
		{Codec: "a", CompressMS: 100},
		{Codec: "b", CompressMS: 10},
		{Codec: "c", CompressMS: 50},
	}
	got, err := Label(ms, TimeOnlyWeights())
	if err != nil || got != "b" {
		t.Fatalf("Label = %q, %v", got, err)
	}
	if _, err := Label(nil, TimeOnlyWeights()); err == nil {
		t.Fatal("empty measurement list accepted")
	}
	// Ties break toward the earlier entry.
	tie := []Measurement{{Codec: "x", CompressMS: 5}, {Codec: "y", CompressMS: 5}}
	got, _ = Label(tie, TimeOnlyWeights())
	if got != "x" {
		t.Fatalf("tie break = %q, want x", got)
	}
}

func trainTinyTree(t *testing.T) *dtree.Tree {
	t.Helper()
	ds := dtree.Dataset{
		FeatureNames: FeatureNames,
		ClassNames:   []string{"dnax", "gencompress"},
	}
	for i := 0; i < 200; i++ {
		size := float64(i) // KB
		y := 0
		if size < 100 {
			y = 1
		}
		ds.X = append(ds.X, []float64{size, 2048, 2100, 10})
		ds.Y = append(ds.Y, y)
	}
	tree, err := dtree.TrainCART(ds, dtree.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestInferenceEngine(t *testing.T) {
	tree := trainTinyTree(t)
	eng, err := NewInferenceEngine(tree)
	if err != nil {
		t.Fatal(err)
	}
	small := Context{FileSizeKB: 20, RAMMB: 2048, CPUMHz: 2100, BandwidthMbps: 10}
	large := Context{FileSizeKB: 180, RAMMB: 2048, CPUMHz: 2100, BandwidthMbps: 10}
	if got := eng.SelectCodec(small); got != "gencompress" {
		t.Errorf("small file selected %q", got)
	}
	if got := eng.SelectCodec(large); got != "dnax" {
		t.Errorf("large file selected %q", got)
	}
	if len(eng.Rules()) == 0 {
		t.Error("no rules exposed")
	}
	if eng.Tree() != tree {
		t.Error("Tree() does not expose the wrapped tree")
	}
}

func TestInferenceEngineRejectsWrongFeatures(t *testing.T) {
	ds := dtree.Dataset{
		FeatureNames: []string{"alien"},
		ClassNames:   []string{"a", "b"},
		X:            [][]float64{{1}, {2}, {3}, {4}},
		Y:            []int{0, 1, 0, 1},
	}
	tree, err := dtree.TrainCART(ds, dtree.Config{MinSamplesSplit: 2, MinSamplesLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInferenceEngine(tree); err == nil {
		t.Fatal("wrong feature space accepted")
	}
	if _, err := NewInferenceEngine(nil); err == nil {
		t.Fatal("nil tree accepted")
	}
}

func TestExchangePipeline(t *testing.T) {
	store := cloud.NewBlobStore()
	if err := store.CreateContainer("seqs"); err != nil {
		t.Fatal(err)
	}
	client := cloud.VM{Name: "client", RAMMB: 3584, CPUMHz: 2400, BandwidthMbps: 10}
	p := synth.Profile{Length: 30000, GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 300, MutationRate: 0.03, LocalOrder: 3, LocalBias: 0.8}
	seqData := p.Generate(42)

	for _, codec := range []string{"dnax", "gzip"} {
		rep, err := Exchange(store, "seqs", "blob-"+codec, client, codec, seqData)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if rep.OriginalBases != len(seqData) {
			t.Errorf("%s: bases %d", codec, rep.OriginalBases)
		}
		if rep.CompressedBytes <= 0 || rep.BitsPerBase <= 0 {
			t.Errorf("%s: bad sizes %+v", codec, rep)
		}
		m := rep.Measurement
		if m.CompressMS <= 0 || m.DecompressMS <= 0 || m.UploadMS <= 0 || m.DownloadMS <= 0 {
			t.Errorf("%s: non-positive stage times %+v", codec, m)
		}
		// The BLOB must actually be in the store.
		if n, err := store.Size("seqs", "blob-"+codec); err != nil || n != rep.CompressedBytes {
			t.Errorf("%s: stored size %d, %v", codec, n, err)
		}
	}
}

func TestExchangeUnknownCodec(t *testing.T) {
	store := cloud.NewBlobStore()
	store.CreateContainer("c")
	_, err := Exchange(store, "c", "b", cloud.AzureVM, "nope", []byte{0, 1, 2})
	if err == nil || !strings.Contains(err.Error(), "unknown codec") {
		t.Fatalf("err = %v", err)
	}
}

func TestExchangeMissingContainer(t *testing.T) {
	store := cloud.NewBlobStore()
	_, err := Exchange(store, "missing", "b", cloud.AzureVM, "gzip", []byte{0, 1, 2})
	if err == nil {
		t.Fatal("missing container accepted")
	}
}
