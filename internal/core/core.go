// Package core implements the paper's context-aware compression framework
// (Figures 1 and 7): the Context a client gathers before compressing, the
// Eq. 1 labeler that scores each algorithm's end-to-end cost under a weight
// vector, the inference engine that turns trained decision-tree rules into
// codec selections, and the end-to-end exchange pipeline (cleanse → select →
// compress → upload → download at the cloud VM → decompress).
package core

import (
	"fmt"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/dtree"
)

// Context is the paper's context vector: "Size of file, Algorithm,
// Bandwidth, CPU Speed, and Memory Available". The algorithm is the label
// being predicted; the other four are the features.
type Context struct {
	FileSizeKB    float64
	RAMMB         float64
	CPUMHz        float64
	BandwidthMbps float64
}

// FeatureNames matches the order of Features.
var FeatureNames = []string{"file_kb", "ram_mb", "cpu_mhz", "bw_mbps"}

// Features returns the learning feature vector.
func (c Context) Features() []float64 {
	return []float64{c.FileSizeKB, c.RAMMB, c.CPUMHz, c.BandwidthMbps}
}

// GatherContext is the framework's Context Gatherer: it inspects the client
// VM and the file about to be exchanged.
func GatherContext(vm cloud.VM, fileBytes int) Context {
	return Context{
		FileSizeKB:    float64(fileBytes) / 1024,
		RAMMB:         float64(vm.RAMMB),
		CPUMHz:        float64(vm.CPUMHz),
		BandwidthMbps: vm.BandwidthMbps,
	}
}

// Measurement is one codec's fully-measured exchange in one context — one
// row of the paper's training table before labeling.
type Measurement struct {
	Codec           string
	CompressMS      float64
	DecompressMS    float64
	UploadMS        float64
	DownloadMS      float64
	RAMBytes        int // measured RAM (harness applies measurement noise)
	CompressedBytes int
}

// TotalTimeMS is the equal-weight time sum the paper's headline results use.
func (m Measurement) TotalTimeMS() float64 {
	return m.CompressMS + m.DecompressMS + m.UploadMS + m.DownloadMS
}

// Weights is the weight vector of Eq. 1:
//
//	E = w1·Compress + w2·Decompress + w3·Upload + w4·Download + w5·RAM
//
// Times contribute in milliseconds and RAM in kilobytes, mirroring the
// paper's raw (unnormalized) combination of magnitudes. Because measured
// RAM (tens of thousands of KB) dwarfs the time terms for most rows, any
// weight on RAM drags the labels toward the noisy RAM ordering — exactly
// why the paper's mixed-weight models collapse toward the RAM-only
// accuracy, recovering only as the time weight grows and large files'
// multi-second times overtake the RAM magnitudes.
type Weights struct {
	CompressTime   float64
	DecompressTime float64
	UploadTime     float64
	DownloadTime   float64
	RAM            float64
}

// Common weight vectors from the paper's Table 2.
func TimeOnlyWeights() Weights {
	return Weights{CompressTime: 1, DecompressTime: 1, UploadTime: 1, DownloadTime: 1}
}
func RAMOnlyWeights() Weights          { return Weights{RAM: 1} }
func CompressTimeOnlyWeights() Weights { return Weights{CompressTime: 1} }

// RAMTimeWeights splits weight wRAM:wTime between the RAM term and the four
// time terms (each time term gets wTime).
func RAMTimeWeights(wRAM, wTime float64) Weights {
	return Weights{RAM: wRAM, CompressTime: wTime, DecompressTime: wTime, UploadTime: wTime, DownloadTime: wTime}
}

// Score evaluates Eq. 1 for one measurement.
func (w Weights) Score(m Measurement) float64 {
	return w.CompressTime*m.CompressMS +
		w.DecompressTime*m.DecompressMS +
		w.UploadTime*m.UploadMS +
		w.DownloadTime*m.DownloadMS +
		w.RAM*float64(m.RAMBytes)/1024
}

// Label returns the codec minimizing Eq. 1 — the paper's labeling step:
// "the algorithm which is utilizing the less resources is selected to
// label". Ties break toward the earlier measurement, matching a stable
// argmin scan.
func Label(ms []Measurement, w Weights) (string, error) {
	if len(ms) == 0 {
		return "", fmt.Errorf("core: no measurements to label")
	}
	best := 0
	bestE := w.Score(ms[0])
	for i := 1; i < len(ms); i++ {
		if e := w.Score(ms[i]); e < bestE {
			best, bestE = i, e
		}
	}
	return ms[best].Codec, nil
}

// LabelNormalized is the paper's future-work improvement to Eq. 1
// ("Directions for future work could be to improve the Eq. 1"): each metric
// is min-max normalized across the candidate measurements *before*
// weighting, so no term dominates by raw magnitude. Under normalized
// scoring a mixed RAM:TIME weight behaves like an actual trade-off instead
// of collapsing to the RAM ordering.
func LabelNormalized(ms []Measurement, w Weights) (string, error) {
	if len(ms) == 0 {
		return "", fmt.Errorf("core: no measurements to label")
	}
	metrics := [5]func(Measurement) float64{
		func(m Measurement) float64 { return m.CompressMS },
		func(m Measurement) float64 { return m.DecompressMS },
		func(m Measurement) float64 { return m.UploadMS },
		func(m Measurement) float64 { return m.DownloadMS },
		func(m Measurement) float64 { return float64(m.RAMBytes) },
	}
	weights := [5]float64{w.CompressTime, w.DecompressTime, w.UploadTime, w.DownloadTime, w.RAM}
	scores := make([]float64, len(ms))
	for k, metric := range metrics {
		if weights[k] == 0 {
			continue
		}
		lo, hi := metric(ms[0]), metric(ms[0])
		for _, m := range ms[1:] {
			v := metric(m)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		if span == 0 {
			continue
		}
		for i, m := range ms {
			scores[i] += weights[k] * (metric(m) - lo) / span
		}
	}
	best := 0
	for i := 1; i < len(ms); i++ {
		if scores[i] < scores[best] {
			best = i
		}
	}
	return ms[best].Codec, nil
}

// InferenceEngine wraps trained rules and answers "which algorithm should
// be used?" for a gathered context (framework Fig. 7).
type InferenceEngine struct {
	tree *dtree.Tree
}

// NewInferenceEngine wraps a trained tree whose feature space must be the
// core feature vector.
func NewInferenceEngine(t *dtree.Tree) (*InferenceEngine, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil tree")
	}
	if len(t.FeatureNames) != len(FeatureNames) {
		return nil, fmt.Errorf("core: tree has %d features, want %d", len(t.FeatureNames), len(FeatureNames))
	}
	for i, name := range FeatureNames {
		if t.FeatureNames[i] != name {
			return nil, fmt.Errorf("core: tree feature %d is %q, want %q", i, t.FeatureNames[i], name)
		}
	}
	return &InferenceEngine{tree: t}, nil
}

// SelectCodec returns the codec name the rules choose for ctx.
func (e *InferenceEngine) SelectCodec(ctx Context) string {
	return e.tree.PredictName(ctx.Features())
}

// Rules exposes the underlying rule list (for the CLI and reports).
func (e *InferenceEngine) Rules() []dtree.Rule { return e.tree.Rules() }

// Tree exposes the wrapped tree.
func (e *InferenceEngine) Tree() *dtree.Tree { return e.tree }

// ExchangeReport is the outcome of one end-to-end exchange.
type ExchangeReport struct {
	Codec           string
	OriginalBases   int
	CompressedBytes int
	Measurement     Measurement
	BitsPerBase     float64
}

// Exchange runs the full Figure 1 pipeline deterministically: compress seq
// with the named codec on the client VM, upload the BLOB to the store,
// download it at the fixed Azure VM, decompress, and verify the round trip.
// The returned report carries the modeled times for each stage.
func Exchange(store *cloud.BlobStore, container, blob string, client cloud.VM, codecName string, seq []byte) (ExchangeReport, error) {
	codec, err := compress.New(codecName)
	if err != nil {
		return ExchangeReport{}, err
	}
	data, cst, err := codec.Compress(seq)
	if err != nil {
		return ExchangeReport{}, fmt.Errorf("core: compress: %w", err)
	}
	if err := store.Put(container, blob, data); err != nil {
		return ExchangeReport{}, fmt.Errorf("core: upload: %w", err)
	}
	fetched, err := store.Get(container, blob)
	if err != nil {
		return ExchangeReport{}, fmt.Errorf("core: download: %w", err)
	}
	restored, dst, err := codec.Decompress(fetched)
	if err != nil {
		return ExchangeReport{}, fmt.Errorf("core: decompress: %w", err)
	}
	if len(restored) != len(seq) {
		return ExchangeReport{}, fmt.Errorf("core: round trip length %d != %d", len(restored), len(seq))
	}
	for i := range restored {
		if restored[i] != seq[i] {
			return ExchangeReport{}, fmt.Errorf("core: round trip mismatch at base %d", i)
		}
	}
	m := Measurement{
		Codec:           codecName,
		CompressMS:      client.ExecMS(cst),
		DecompressMS:    cloud.AzureVM.ExecMS(dst),
		UploadMS:        client.UploadMS(len(data)),
		DownloadMS:      cloud.AzureVM.DownloadMS(len(data)),
		RAMBytes:        cst.PeakMem,
		CompressedBytes: len(data),
	}
	return ExchangeReport{
		Codec:           codecName,
		OriginalBases:   len(seq),
		CompressedBytes: len(data),
		Measurement:     m,
		BitsPerBase:     compress.Ratio(len(seq), len(data)),
	}, nil
}
