// Package bitio provides bit-granular reading and writing on top of byte
// slices and io streams, together with the universal integer codes (unary,
// Elias gamma, Elias delta) used by the repeat-based DNA codecs.
//
// Bits are written most-significant-bit first within each byte, which keeps
// the on-disk format independent of host endianness and makes streams easy
// to inspect in hex dumps.
package bitio

import (
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// ErrValueRange is returned when an integer is outside the encodable range
// of the requested code (for example zero for Elias gamma, which encodes
// strictly positive integers).
var ErrValueRange = errors.New("bitio: value out of range for code")

// Writer accumulates bits into an internal buffer. The zero value is ready
// to use. Writer never fails: it grows its buffer as needed, so the bit-level
// methods have no error return, which keeps the hot encoding loops branch-lean.
type Writer struct {
	buf  []byte
	cur  byte // partially filled byte
	nCur uint // number of bits currently in cur (0..7)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(bit uint) {
	w.cur = w.cur<<1 | byte(bit&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n may be 0,
// in which case nothing is written. n must be at most 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d > 64", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// WriteByte appends 8 bits. It implements io.ByteWriter and never returns a
// non-nil error.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// WriteBytes appends every byte of p.
func (w *Writer) WriteBytes(p []byte) {
	if w.nCur == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// WriteUnary appends v in unary: v one-bits followed by a terminating zero.
func (w *Writer) WriteUnary(v uint64) {
	for ; v >= 64; v -= 64 {
		w.WriteBits(^uint64(0), 64)
	}
	// v < 64 ones followed by a zero: total v+1 bits.
	w.WriteBits((1<<(v+1))-2, uint(v)+1)
}

// WriteGamma appends v >= 1 in Elias gamma code.
func (w *Writer) WriteGamma(v uint64) error {
	if v == 0 {
		return ErrValueRange
	}
	n := uint(bits.Len64(v)) // number of significant bits, >= 1
	w.WriteUnary(uint64(n - 1))
	w.WriteBits(v, n-1) // implicit leading 1 omitted? no: gamma stores the value's low bits after the length
	return nil
}

// WriteDelta appends v >= 1 in Elias delta code: the bit-length is itself
// gamma coded, then the value's bits minus the leading one follow.
func (w *Writer) WriteDelta(v uint64) error {
	if v == 0 {
		return ErrValueRange
	}
	n := uint(bits.Len64(v))
	if err := w.WriteGamma(uint64(n)); err != nil {
		return err
	}
	w.WriteBits(v, n-1)
	return nil
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Len reports the number of bytes Bytes would currently return.
func (w *Writer) Len() int {
	if w.nCur == 0 {
		return len(w.buf)
	}
	return len(w.buf) + 1
}

// Bytes flushes the partial byte (zero padded on the right) and returns the
// accumulated buffer. The Writer remains usable; further writes continue from
// the unpadded bit position, so call Bytes only once encoding is complete.
func (w *Writer) Bytes() []byte {
	if w.nCur == 0 {
		return w.buf
	}
	out := make([]byte, len(w.buf)+1)
	copy(out, w.buf)
	out[len(w.buf)] = w.cur << (8 - w.nCur)
	return out
}

// Reset truncates the writer to empty, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// WriteTo writes the complete (padded) buffer to dst.
func (w *Writer) WriteTo(dst io.Writer) (int64, error) {
	n, err := dst.Write(w.Bytes())
	return int64(n), err
}

// Reader consumes bits from a byte slice produced by Writer.
type Reader struct {
	buf  []byte
	pos  int  // next byte index
	cur  byte // current byte being consumed
	nCur uint // bits remaining in cur
}

// NewReader returns a Reader over p. The Reader does not copy p.
func NewReader(p []byte) *Reader { return &Reader{buf: p} }

// ReadBit returns the next bit. It returns io.ErrUnexpectedEOF when the
// stream is exhausted.
func (r *Reader) ReadBit() (uint, error) {
	if r.nCur == 0 {
		if r.pos >= len(r.buf) {
			return 0, io.ErrUnexpectedEOF
		}
		r.cur = r.buf[r.pos]
		r.pos++
		r.nCur = 8
	}
	r.nCur--
	return uint(r.cur >> r.nCur & 1), nil
}

// ReadBits returns the next n bits as an unsigned integer, MSB first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits width %d > 64", n))
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadByte returns the next 8 bits. It implements io.ByteReader.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// ReadUnary decodes a unary-coded integer.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// ReadGamma decodes an Elias gamma coded integer (>= 1).
func (r *Reader) ReadGamma() (uint64, error) {
	nm1, err := r.ReadUnary()
	if err != nil {
		return 0, err
	}
	if nm1 >= 64 {
		return 0, fmt.Errorf("bitio: gamma length %d exceeds 64 bits", nm1+1)
	}
	low, err := r.ReadBits(uint(nm1))
	if err != nil {
		return 0, err
	}
	return 1<<nm1 | low, nil
}

// ReadDelta decodes an Elias delta coded integer (>= 1).
func (r *Reader) ReadDelta() (uint64, error) {
	n, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	if n == 0 || n > 64 {
		return 0, fmt.Errorf("bitio: delta length %d out of range", n)
	}
	low, err := r.ReadBits(uint(n - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(n-1) | low, nil
}

// BitsRead reports the number of bits consumed so far.
func (r *Reader) BitsRead() int { return r.pos*8 - int(r.nCur) }

// Remaining reports the number of unread bits (including padding bits).
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.BitsRead() }
