package bitio

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBit(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	cases := []struct {
		v uint64
		n uint
	}{
		{0, 0}, {0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9},
		{math.MaxUint32, 32}, {math.MaxUint64, 64}, {0xdeadbeef, 37},
	}
	w := NewWriter(64)
	for _, c := range cases {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for _, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("ReadBits(%d): %v", c.n, err)
		}
		want := c.v
		if c.n < 64 {
			want &= (1 << c.n) - 1
		}
		if got != want {
			t.Fatalf("ReadBits(%d): got %#x want %#x", c.n, got, want)
		}
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0xff, 4) // only low 4 bits must land
	got := w.Bytes()
	if got[0] != 0xf0 {
		t.Fatalf("got %#x want 0xf0", got[0])
	}
}

func TestBytePadding(t *testing.T) {
	w := NewWriter(1)
	w.WriteBit(1)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x80 {
		t.Fatalf("got %v, want [0x80]", b)
	}
	if w.BitLen() != 1 {
		t.Fatalf("BitLen = %d, want 1", w.BitLen())
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter(8)
	w.WriteBytes([]byte{1, 2, 3})
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3}) {
		t.Fatalf("aligned WriteBytes mismatch: %v", w.Bytes())
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(8)
	w.WriteBit(1)
	w.WriteBytes([]byte{0xAB, 0xCD})
	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("lost leading bit")
	}
	v, err := r.ReadBits(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Fatalf("got %#x want 0xabcd", v)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 2, 7, 63, 64, 65, 130, 1000}
	w := NewWriter(256)
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary: %v", err)
		}
		if got != want {
			t.Fatalf("unary: got %d want %d", got, want)
		}
	}
}

func TestGammaRoundTrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 4, 7, 8, 100, 1 << 20, math.MaxUint32, math.MaxUint64}
	w := NewWriter(256)
	for _, v := range vals {
		if err := w.WriteGamma(v); err != nil {
			t.Fatalf("WriteGamma(%d): %v", v, err)
		}
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadGamma()
		if err != nil {
			t.Fatalf("ReadGamma: %v", err)
		}
		if got != want {
			t.Fatalf("gamma: got %d want %d", got, want)
		}
	}
}

func TestGammaRejectsZero(t *testing.T) {
	w := NewWriter(1)
	if err := w.WriteGamma(0); err != ErrValueRange {
		t.Fatalf("WriteGamma(0) = %v, want ErrValueRange", err)
	}
	if err := w.WriteDelta(0); err != ErrValueRange {
		t.Fatalf("WriteDelta(0) = %v, want ErrValueRange", err)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	vals := []uint64{1, 2, 3, 15, 16, 17, 1 << 30, math.MaxUint64}
	w := NewWriter(256)
	for _, v := range vals {
		if err := w.WriteDelta(v); err != nil {
			t.Fatalf("WriteDelta(%d): %v", v, err)
		}
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadDelta()
		if err != nil {
			t.Fatalf("ReadDelta: %v", err)
		}
		if got != want {
			t.Fatalf("delta: got %d want %d", got, want)
		}
	}
}

func TestGammaLength(t *testing.T) {
	// gamma(1) = "0" (1 bit); gamma(2) = "10 0" (3 bits); gamma(4) = "110 00" (5 bits)
	for _, c := range []struct {
		v    uint64
		bits int
	}{{1, 1}, {2, 3}, {3, 3}, {4, 5}, {8, 7}} {
		w := NewWriter(8)
		if err := w.WriteGamma(c.v); err != nil {
			t.Fatal(err)
		}
		if w.BitLen() != c.bits {
			t.Errorf("gamma(%d) length = %d bits, want %d", c.v, w.BitLen(), c.bits)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadBits(4); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := r.ReadUnary(); err != io.ErrUnexpectedEOF {
		t.Fatalf("unary past end: got %v", err)
	}
}

func TestBitsReadRemaining(t *testing.T) {
	r := NewReader([]byte{0xAA, 0x55})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
	r.ReadBits(5)
	if r.BitsRead() != 5 || r.Remaining() != 11 {
		t.Fatalf("BitsRead=%d Remaining=%d, want 5/11", r.BitsRead(), r.Remaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xABCD, 16)
	w.Reset()
	if w.BitLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("Reset did not clear writer")
	}
	w.WriteBit(1)
	if w.Bytes()[0] != 0x80 {
		t.Fatal("writer unusable after Reset")
	}
}

func TestWriteTo(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0x1234, 16)
	var buf bytes.Buffer
	n, err := w.WriteTo(&buf)
	if err != nil || n != 2 {
		t.Fatalf("WriteTo = (%d,%v), want (2,nil)", n, err)
	}
	if !bytes.Equal(buf.Bytes(), []byte{0x12, 0x34}) {
		t.Fatalf("WriteTo wrote %v", buf.Bytes())
	}
}

func TestQuickGammaDelta(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := make([]uint64, 0, len(raw))
		for _, v := range raw {
			vals = append(vals, uint64(v)+1) // strictly positive
		}
		w := NewWriter(len(vals) * 8)
		for _, v := range vals {
			if err := w.WriteGamma(v); err != nil {
				return false
			}
			if err := w.WriteDelta(v); err != nil {
				return false
			}
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			g, err := r.ReadGamma()
			if err != nil || g != v {
				return false
			}
			d, err := r.ReadDelta()
			if err != nil || d != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBitsMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(200) + 1
		widths := make([]uint, n)
		vals := make([]uint64, n)
		w := NewWriter(n * 8)
		for i := range widths {
			widths[i] = uint(rng.Intn(64) + 1)
			vals[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			if widths[i] == 64 {
				vals[i] = rng.Uint64()
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range widths {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("trial %d item %d: %v", trial, i, err)
			}
			if got != vals[i] {
				t.Fatalf("trial %d item %d: got %#x want %#x (width %d)", trial, i, got, vals[i], widths[i])
			}
		}
	}
}

func BenchmarkWriteBit(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.BitLen() > 1<<23 {
			w.Reset()
		}
		w.WriteBit(uint(i) & 1)
	}
}

func BenchmarkWriteGamma(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.BitLen() > 1<<23 {
			w.Reset()
		}
		w.WriteGamma(uint64(i%1000 + 1))
	}
}
