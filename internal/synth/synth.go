// Package synth generates deterministic synthetic DNA sequences with
// controlled repeat structure. It stands in for the paper's corpus (NCBI
// bacterial downloads plus the standard DNA compression benchmark files),
// which cannot be redistributed here. The generator controls exactly the
// properties the compared codecs exploit:
//
//   - exact direct repeats (found by DNAX, BioCompress, gzip's LZ77),
//   - reverse-complement (palindrome) repeats (DNAX, BioCompress),
//   - approximate repeats carrying point mutations at the ~0.1 % rate the
//     paper cites for intra-species variation (GenCompress's edit-distance
//     search is the only searcher that monetizes these),
//   - global base composition / GC skew (all statistical coders: CTW,
//     order-2 arithmetic).
//
// Because relative codec ranking is a function of these properties, a corpus
// that controls them reproduces the paper's comparison shape even though the
// literal bytes differ.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/srl-nuces/ctxdna/internal/seq"
)

// Profile describes the statistical character of a generated sequence.
type Profile struct {
	Name   string
	Length int     // bases
	GC     float64 // target GC fraction for random regions

	// RepeatProb is the per-emission probability of starting a repeat copy
	// instead of a random base. Together with the length bounds it sets the
	// fraction of the sequence covered by repeats.
	RepeatProb           float64
	RepeatMin, RepeatMax int

	// RCFraction is the fraction of repeats copied as reverse complements.
	RCFraction float64

	// MutationRate is the per-base probability that a copied base is
	// substituted, turning an exact repeat into an approximate one.
	MutationRate float64

	// LocalOrder adds order-k Markov structure to the random regions —
	// the dinucleotide/codon bias real DNA carries that statistical coders
	// (CTW, order-2 arithmetic) exploit below the 2-bit floor even where
	// no repeats exist. 0 means iid.
	LocalOrder int
	// LocalBias in [0,1) scales how skewed the per-context distributions
	// are; 0 means uniform (iid), ~0.5 reproduces the ~1.9 bits/base
	// entropy of real genomic DNA.
	LocalBias float64
}

// Validate reports whether the profile's parameters are coherent.
func (p Profile) Validate() error {
	switch {
	case p.Length < 0:
		return fmt.Errorf("synth: profile %q: negative length", p.Name)
	case p.GC < 0 || p.GC > 1:
		return fmt.Errorf("synth: profile %q: GC %v outside [0,1]", p.Name, p.GC)
	case p.RepeatProb < 0 || p.RepeatProb > 1:
		return fmt.Errorf("synth: profile %q: RepeatProb %v outside [0,1]", p.Name, p.RepeatProb)
	case p.RepeatMin < 0 || (p.RepeatProb > 0 && p.RepeatMax < p.RepeatMin):
		return fmt.Errorf("synth: profile %q: repeat bounds [%d,%d] invalid", p.Name, p.RepeatMin, p.RepeatMax)
	case p.RCFraction < 0 || p.RCFraction > 1:
		return fmt.Errorf("synth: profile %q: RCFraction %v outside [0,1]", p.Name, p.RCFraction)
	case p.MutationRate < 0 || p.MutationRate > 1:
		return fmt.Errorf("synth: profile %q: MutationRate %v outside [0,1]", p.Name, p.MutationRate)
	case p.LocalOrder < 0 || p.LocalOrder > 8:
		return fmt.Errorf("synth: profile %q: LocalOrder %d outside [0,8]", p.Name, p.LocalOrder)
	case p.LocalBias < 0 || p.LocalBias >= 1:
		return fmt.Errorf("synth: profile %q: LocalBias %v outside [0,1)", p.Name, p.LocalBias)
	}
	return nil
}

// Generate produces a symbol-coded sequence (values 0..3) of p.Length bases.
// The same profile and seed always yield the same sequence.
func (p Profile) Generate(seed int64) []byte {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, p.Length)

	// Base distribution respecting the GC target: GC mass split between G
	// and C, AT mass between A and T. (Order matches symbol codes A,C,G,T.)
	baseP := [4]float64{(1 - p.GC) / 2, p.GC / 2, p.GC / 2, (1 - p.GC) / 2}

	// Markov local structure: one cumulative distribution per context,
	// derived deterministically from the profile seed by tilting baseP.
	var (
		ctxMask int
		cum     [][4]float64
	)
	if p.LocalOrder > 0 && p.LocalBias > 0 {
		nCtx := 1 << (2 * p.LocalOrder)
		ctxMask = nCtx - 1
		cum = make([][4]float64, nCtx)
		for ctx := range cum {
			var w [4]float64
			total := 0.0
			for b := 0; b < 4; b++ {
				// Tilt in [1-bias, 1+bias], deterministic given the rng.
				tilt := 1 + p.LocalBias*(2*rng.Float64()-1)
				w[b] = baseP[b] * tilt
				total += w[b]
			}
			acc := 0.0
			for b := 0; b < 4; b++ {
				acc += w[b] / total
				cum[ctx][b] = acc
			}
			cum[ctx][3] = 1 // guard against rounding
		}
	}

	ctx := 0
	randomBase := func() byte {
		r := rng.Float64()
		var dist [4]float64
		if cum != nil {
			dist = cum[ctx]
		} else {
			acc := 0.0
			for b := 0; b < 4; b++ {
				acc += baseP[b]
				dist[b] = acc
			}
			dist[3] = 1
		}
		for b := byte(0); b < 3; b++ {
			if r < dist[b] {
				return b
			}
		}
		return 3
	}
	push := func(b byte) {
		out = append(out, b)
		ctx = (ctx<<2 | int(b)) & ctxMask
	}

	for len(out) < p.Length {
		// A repeat needs an existing prefix at least RepeatMin long.
		if p.RepeatProb > 0 && len(out) > p.RepeatMin && rng.Float64() < p.RepeatProb {
			span := p.RepeatMax - p.RepeatMin
			repLen := p.RepeatMin
			if span > 0 {
				repLen += rng.Intn(span + 1)
			}
			if repLen > len(out) {
				repLen = len(out)
			}
			if repLen > p.Length-len(out) {
				repLen = p.Length - len(out)
			}
			if repLen <= 0 {
				continue
			}
			src := rng.Intn(len(out) - repLen + 1)
			asRC := rng.Float64() < p.RCFraction
			for i := 0; i < repLen; i++ {
				var b byte
				if asRC {
					b = seq.Complement(out[src+repLen-1-i])
				} else {
					b = out[src+i]
				}
				if p.MutationRate > 0 && rng.Float64() < p.MutationRate {
					b = (b + byte(1+rng.Intn(3))) & 3 // substitute with a different base
				}
				push(b)
			}
			continue
		}
		push(randomBase())
	}
	return out
}

// GenerateASCII is Generate followed by conversion to ACGT letters.
func (p Profile) GenerateASCII(seed int64) []byte {
	return seq.Decode(p.Generate(seed))
}

// Benchmark returns profiles named and sized after the standard DNA
// compression corpus used throughout the literature the paper builds on
// (Grumbach & Tahi; Manzini & Rastero; the paper's §IV.A "seven files from
// benchmark standard dataset"). Lengths are the published base counts; the
// repeat parameters are tuned per family: chloroplasts and mitochondria are
// repeat-rich, human genes carry fewer but longer repeats, and the vaccinia
// virus genome has strong direct repeats at ~33 % coverage.
func Benchmark() []Profile {
	// Repeat coverage fraction ≈ p·E[len] / (p·E[len] + 1-p). The values
	// below put coverage at 8–35 %, matching how the real corpus behaves
	// under LZ-style parsing (DNA codecs land at 1.6–1.95 bits/base, gzip
	// stays above 2).
	return []Profile{
		{Name: "chmpxx", Length: 121024, GC: 0.36, RepeatProb: 0.0012, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.25, MutationRate: 0.035, LocalOrder: 3, LocalBias: 0.85},
		{Name: "chntxx", Length: 155844, GC: 0.38, RepeatProb: 0.0012, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.30, MutationRate: 0.035, LocalOrder: 3, LocalBias: 0.85},
		{Name: "hehcmv", Length: 229354, GC: 0.57, RepeatProb: 0.0008, RepeatMin: 20, RepeatMax: 300, RCFraction: 0.20, MutationRate: 0.04, LocalOrder: 3, LocalBias: 0.8},
		{Name: "humdyst", Length: 38770, GC: 0.37, RepeatProb: 0.0006, RepeatMin: 15, RepeatMax: 200, RCFraction: 0.15, MutationRate: 0.05, LocalOrder: 4, LocalBias: 0.85},
		{Name: "humghcs", Length: 66495, GC: 0.52, RepeatProb: 0.0020, RepeatMin: 30, RepeatMax: 800, RCFraction: 0.10, MutationRate: 0.035, LocalOrder: 4, LocalBias: 0.85},
		{Name: "humhbb", Length: 73308, GC: 0.40, RepeatProb: 0.0010, RepeatMin: 20, RepeatMax: 300, RCFraction: 0.15, MutationRate: 0.04, LocalOrder: 4, LocalBias: 0.85},
		{Name: "humhdab", Length: 58864, GC: 0.54, RepeatProb: 0.0010, RepeatMin: 20, RepeatMax: 300, RCFraction: 0.15, MutationRate: 0.04, LocalOrder: 4, LocalBias: 0.85},
		{Name: "humprtb", Length: 56737, GC: 0.38, RepeatProb: 0.0010, RepeatMin: 20, RepeatMax: 300, RCFraction: 0.15, MutationRate: 0.04, LocalOrder: 4, LocalBias: 0.85},
		{Name: "mpomtcg", Length: 186608, GC: 0.43, RepeatProb: 0.0012, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.25, MutationRate: 0.035, LocalOrder: 3, LocalBias: 0.85},
		{Name: "mtpacga", Length: 100314, GC: 0.41, RepeatProb: 0.0012, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.25, MutationRate: 0.035, LocalOrder: 3, LocalBias: 0.85},
		{Name: "vaccg", Length: 191737, GC: 0.33, RepeatProb: 0.0030, RepeatMin: 30, RepeatMax: 1000, RCFraction: 0.20, MutationRate: 0.03, LocalOrder: 3, LocalBias: 0.8},
	}
}

// File is one member of a generated corpus.
type File struct {
	Name string
	Data []byte // symbol codes 0..3
}

// SizeBytes reports the raw (1 byte per base) size, the quantity the paper's
// file-size context variable refers to.
func (f File) SizeBytes() int { return len(f.Data) }

// CorpusSpec configures ExperimentCorpus.
type CorpusSpec struct {
	NumFiles int   // paper: 132
	MinSize  int   // bases; paper corpus starts around 1 KB
	MaxSize  int   // bases; paper restricted files to 10 MB
	Seed     int64 // master seed; file i derives seed Seed*1e6 + i
}

// DefaultCorpusSpec mirrors the paper's corpus shape scaled to CI-friendly
// sizes: 132 files log-spaced between 1 KB and 512 KB. Pass a larger MaxSize
// (up to 10 MB, the paper's cap) for full-scale runs via cmd/experiment.
func DefaultCorpusSpec() CorpusSpec {
	return CorpusSpec{NumFiles: 132, MinSize: 1 << 10, MaxSize: 512 << 10, Seed: 2015}
}

// ExperimentCorpus generates spec.NumFiles sequences with log-spaced sizes
// and rotating repeat character, emulating the paper's mixed bag of
// bacterial sequences: "A total of 132 files are used in the experiments
// with different file sizes."
func ExperimentCorpus(spec CorpusSpec) []File {
	if spec.NumFiles <= 0 {
		return nil
	}
	if spec.MinSize <= 0 {
		spec.MinSize = 1024
	}
	if spec.MaxSize < spec.MinSize {
		spec.MaxSize = spec.MinSize
	}
	// Repeat-character rotation: light, medium, heavy, palindromic —
	// repeat coverage spanning roughly 5–40 %, the realistic corpus range.
	kinds := []Profile{
		{GC: 0.42, RepeatProb: 0.0005, RepeatMin: 12, RepeatMax: 120, RCFraction: 0.10, MutationRate: 0.05, LocalOrder: 3, LocalBias: 0.8},
		{GC: 0.38, RepeatProb: 0.0012, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.20, MutationRate: 0.035, LocalOrder: 3, LocalBias: 0.85},
		{GC: 0.35, RepeatProb: 0.0030, RepeatMin: 30, RepeatMax: 900, RCFraction: 0.20, MutationRate: 0.025, LocalOrder: 3, LocalBias: 0.8},
		{GC: 0.50, RepeatProb: 0.0015, RepeatMin: 25, RepeatMax: 500, RCFraction: 0.60, MutationRate: 0.03, LocalOrder: 4, LocalBias: 0.85},
	}
	files := make([]File, spec.NumFiles)
	ratio := float64(spec.MaxSize) / float64(spec.MinSize)
	for i := range files {
		frac := 0.0
		if spec.NumFiles > 1 {
			frac = float64(i) / float64(spec.NumFiles-1)
		}
		size := int(float64(spec.MinSize) * math.Pow(ratio, frac))
		p := kinds[i%len(kinds)]
		p.Name = fmt.Sprintf("synth%03d", i)
		p.Length = size
		files[i] = File{Name: p.Name, Data: p.Generate(spec.Seed*1_000_000 + int64(i))}
	}
	return files
}
