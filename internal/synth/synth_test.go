package synth

import (
	"bytes"
	"math"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/seq"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "x", Length: 10000, GC: 0.4, RepeatProb: 0.01, RepeatMin: 10, RepeatMax: 100, RCFraction: 0.2, MutationRate: 0.01}
	a := p.Generate(42)
	b := p.Generate(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different sequences")
	}
	c := p.Generate(43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGenerateLengthAndAlphabet(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1000, 100000} {
		p := Profile{Length: n, GC: 0.5, RepeatProb: 0.02, RepeatMin: 5, RepeatMax: 50}
		s := p.Generate(1)
		if len(s) != n {
			t.Fatalf("Length %d: got %d bases", n, len(s))
		}
		if !seq.Valid(s) {
			t.Fatalf("Length %d: invalid symbols", n)
		}
	}
}

func TestGCControl(t *testing.T) {
	for _, gc := range []float64{0.2, 0.5, 0.8} {
		p := Profile{Length: 200000, GC: gc} // no repeats: pure iid
		s := p.Generate(7)
		got := seq.GCContent(s)
		if math.Abs(got-gc) > 0.02 {
			t.Errorf("GC target %.2f: measured %.3f", gc, got)
		}
	}
}

func TestRepeatsIncreaseCompressibility(t *testing.T) {
	// A crude LZ-style proxy: count positions covered by some repeated
	// 16-mer. The repeat-rich profile must show materially more coverage.
	cover := func(s []byte) float64 {
		const k = 16
		if len(s) < k {
			return 0
		}
		seen := make(map[string]bool, len(s))
		dup := 0
		for i := 0; i+k <= len(s); i += k {
			key := string(s[i : i+k])
			if seen[key] {
				dup++
			}
			seen[key] = true
		}
		return float64(dup) / float64(len(s)/k)
	}
	flat := Profile{Length: 150000, GC: 0.4}
	rich := Profile{Length: 150000, GC: 0.4, RepeatProb: 0.03, RepeatMin: 50, RepeatMax: 800}
	cFlat := cover(flat.Generate(3))
	cRich := cover(rich.Generate(3))
	if cRich < cFlat+0.1 {
		t.Fatalf("repeat-rich coverage %.3f not above flat %.3f", cRich, cFlat)
	}
}

func TestValidate(t *testing.T) {
	bad := []Profile{
		{Length: -1},
		{GC: 1.5},
		{RepeatProb: -0.1},
		{RepeatProb: 0.5, RepeatMin: 10, RepeatMax: 5},
		{RCFraction: 2},
		{MutationRate: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	good := Profile{Length: 100, GC: 0.5, RepeatProb: 0.01, RepeatMin: 5, RepeatMax: 50, RCFraction: 0.3, MutationRate: 0.01}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid profile: %v", err)
	}
}

func TestGenerateASCII(t *testing.T) {
	p := Profile{Length: 100, GC: 0.5}
	a := p.GenerateASCII(5)
	if len(a) != 100 {
		t.Fatalf("got %d chars", len(a))
	}
	for _, b := range a {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("non-ACGT output %q", b)
		}
	}
}

func TestBenchmarkCorpus(t *testing.T) {
	profs := Benchmark()
	if len(profs) != 11 {
		t.Fatalf("got %d benchmark profiles", len(profs))
	}
	names := map[string]bool{}
	for _, p := range profs {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate name %s", p.Name)
		}
		names[p.Name] = true
		if p.Length < 30000 || p.Length > 300000 {
			t.Errorf("profile %s length %d outside corpus range", p.Name, p.Length)
		}
	}
	// humdyst is the paper-cited small human gene; it anchors the <50 KB regime.
	if !names["humdyst"] || !names["vaccg"] {
		t.Error("missing canonical corpus members")
	}
}

func TestExperimentCorpus(t *testing.T) {
	spec := CorpusSpec{NumFiles: 20, MinSize: 1000, MaxSize: 64000, Seed: 1}
	files := ExperimentCorpus(spec)
	if len(files) != 20 {
		t.Fatalf("got %d files", len(files))
	}
	if files[0].SizeBytes() != 1000 {
		t.Errorf("first file %d bases, want 1000", files[0].SizeBytes())
	}
	last := files[len(files)-1].SizeBytes()
	if last < 63000 || last > 65000 {
		t.Errorf("last file %d bases, want ~64000", last)
	}
	// Sizes must be non-decreasing (log-spaced).
	for i := 1; i < len(files); i++ {
		if files[i].SizeBytes() < files[i-1].SizeBytes() {
			t.Fatalf("sizes not monotone at %d", i)
		}
	}
	// Determinism across calls.
	again := ExperimentCorpus(spec)
	for i := range files {
		if !bytes.Equal(files[i].Data, again[i].Data) {
			t.Fatalf("file %d not deterministic", i)
		}
	}
}

func TestExperimentCorpusEdgeSpecs(t *testing.T) {
	if got := ExperimentCorpus(CorpusSpec{NumFiles: 0}); got != nil {
		t.Error("zero files should return nil")
	}
	one := ExperimentCorpus(CorpusSpec{NumFiles: 1, MinSize: 500, MaxSize: 100, Seed: 9})
	if len(one) != 1 || one[0].SizeBytes() != 500 {
		t.Errorf("degenerate spec mishandled: %d files, size %d", len(one), one[0].SizeBytes())
	}
}

func TestDefaultCorpusSpec(t *testing.T) {
	spec := DefaultCorpusSpec()
	if spec.NumFiles != 132 {
		t.Errorf("paper uses 132 files, spec says %d", spec.NumFiles)
	}
	if spec.MaxSize > 10<<20 {
		t.Errorf("paper caps files at 10 MB, spec max %d", spec.MaxSize)
	}
}

func BenchmarkGenerate1MB(b *testing.B) {
	p := Profile{Length: 1 << 20, GC: 0.4, RepeatProb: 0.015, RepeatMin: 20, RepeatMax: 400, RCFraction: 0.2, MutationRate: 0.01}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Generate(int64(i))
	}
}
