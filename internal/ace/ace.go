// Package ace implements an Adaptive Compression Environment in the style
// of Krintz & Sucu (the paper's §III related work): a transfer-time
// middleware that decides, per transfer, whether to compress at all and
// with which algorithm, from forecasts of the resources that matter —
// bandwidth and available CPU — plus recent compression-ratio samples.
//
// The forecaster mirrors the Network Weather Service's design: several
// simple predictors (last value, windowed mean, windowed median, EMA) run
// in parallel and the one with the lowest recent absolute error makes the
// forecast. "ACE decides on last samples of compression ratios and if those
// are unavailable ... ACE will consider CPU load and bandwidth for its
// estimation" — reproduced by the default-ratio fallback.
package ace

import (
	"fmt"
	"sort"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

// Forecaster predicts the next value of a noisy series NWS-style.
type Forecaster struct {
	window   []float64
	maxWin   int
	ema      float64
	hasEMA   bool
	emaAlpha float64
	// Cumulative absolute error per predictor: last, mean, median, ema.
	errs  [4]float64
	count int
}

// NewForecaster returns a forecaster with the given sliding window size.
func NewForecaster(window int) *Forecaster {
	if window < 2 {
		window = 2
	}
	return &Forecaster{maxWin: window, emaAlpha: 0.3}
}

func (f *Forecaster) predictions() [4]float64 {
	n := len(f.window)
	last := f.window[n-1]
	sum := 0.0
	for _, v := range f.window {
		sum += v
	}
	mean := sum / float64(n)
	sorted := append([]float64(nil), f.window...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	ema := f.ema
	return [4]float64{last, mean, median, ema}
}

// Observe records a measurement, scoring each predictor against it first.
func (f *Forecaster) Observe(v float64) {
	if len(f.window) > 0 {
		preds := f.predictions()
		for i, p := range preds {
			d := p - v
			if d < 0 {
				d = -d
			}
			f.errs[i] += d
		}
	}
	if f.hasEMA {
		f.ema = f.emaAlpha*v + (1-f.emaAlpha)*f.ema
	} else {
		f.ema = v
		f.hasEMA = true
	}
	f.window = append(f.window, v)
	if len(f.window) > f.maxWin {
		f.window = f.window[1:]
	}
	f.count++
}

// Forecast returns the best predictor's value and whether any observation
// exists.
func (f *Forecaster) Forecast() (float64, bool) {
	if len(f.window) == 0 {
		return 0, false
	}
	preds := f.predictions()
	best := 0
	for i := 1; i < len(preds); i++ {
		if f.errs[i] < f.errs[best] {
			best = i
		}
	}
	return preds[best], true
}

// Samples reports how many observations the forecaster holds.
func (f *Forecaster) Samples() int { return f.count }

// CodecProfile describes one candidate algorithm to the decision engine.
type CodecProfile struct {
	Name string
	// CompressMBps is single-core compression throughput at the reference
	// CPU (from the codec cost models / benchmarks).
	CompressMBps float64
	// DefaultRatio is the compressed-fraction assumed before any samples
	// arrive (output bytes / input bytes).
	DefaultRatio float64
}

// Environment is the ACE middleware state.
type Environment struct {
	bw       *Forecaster // Mbps
	cpuMHz   *Forecaster // available client MHz
	profiles []CodecProfile
	ratios   map[string]*Forecaster
}

// NewEnvironment creates an ACE instance over the candidate codecs.
func NewEnvironment(profiles []CodecProfile) (*Environment, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("ace: no codec profiles")
	}
	e := &Environment{
		bw:       NewForecaster(16),
		cpuMHz:   NewForecaster(16),
		profiles: profiles,
		ratios:   make(map[string]*Forecaster, len(profiles)),
	}
	for _, p := range profiles {
		if p.CompressMBps <= 0 || p.DefaultRatio <= 0 {
			return nil, fmt.Errorf("ace: profile %q has non-positive throughput or ratio", p.Name)
		}
		e.ratios[p.Name] = NewForecaster(8)
	}
	return e, nil
}

// ObserveBandwidth feeds a network sensor measurement (Mbps).
func (e *Environment) ObserveBandwidth(mbps float64) { e.bw.Observe(mbps) }

// ObserveCPU feeds an available-CPU measurement (MHz).
func (e *Environment) ObserveCPU(mhz float64) { e.cpuMHz.Observe(mhz) }

// ObserveRatio feeds a compression-ratio sample (compressedBytes/rawBytes)
// from a completed transfer.
func (e *Environment) ObserveRatio(codec string, ratio float64) {
	if f, ok := e.ratios[codec]; ok && ratio > 0 {
		f.Observe(ratio)
	}
}

// Decision is the engine's answer for one transfer.
type Decision struct {
	Codec       string // "" = send raw
	PredictedMS float64
	RawMS       float64
}

// Decide picks the option minimizing predicted transfer completion time for
// a payload of the given size. With no bandwidth observations it refuses to
// guess and sends raw (the conservative middleware default).
func (e *Environment) Decide(sizeBytes int) Decision {
	bw, ok := e.bw.Forecast()
	if !ok || bw <= 0 {
		return Decision{Codec: "", PredictedMS: 0, RawMS: 0}
	}
	cpu, okCPU := e.cpuMHz.Forecast()
	if !okCPU || cpu <= 0 {
		cpu = float64(compress.ReferenceMHz)
	}
	transferMS := func(bytes float64) float64 {
		return bytes * 8 / (bw * 1e6) * 1e3
	}
	rawMS := transferMS(float64(sizeBytes))
	best := Decision{Codec: "", PredictedMS: rawMS, RawMS: rawMS}
	for _, p := range e.profiles {
		ratio := p.DefaultRatio
		if f := e.ratios[p.Name]; f != nil {
			if r, ok := f.Forecast(); ok {
				ratio = r
			}
		}
		cpuScale := float64(compress.ReferenceMHz) / cpu
		compMS := float64(sizeBytes) / (p.CompressMBps * 1e6) * 1e3 * cpuScale
		total := compMS + transferMS(float64(sizeBytes)*ratio)
		if total < best.PredictedMS {
			best = Decision{Codec: p.Name, PredictedMS: total, RawMS: rawMS}
		}
	}
	return best
}

// DefaultDNAProfiles returns candidate profiles for the repository's codecs,
// derived from their calibrated cost models (throughput at the reference
// core) and typical DNA ratios (compressed fraction of the ASCII bytes).
func DefaultDNAProfiles() []CodecProfile {
	return []CodecProfile{
		{Name: "gzip", CompressMBps: 2.2, DefaultRatio: 0.33},
		{Name: "dnax", CompressMBps: 9.0, DefaultRatio: 0.22},
		{Name: "gencompress", CompressMBps: 0.35, DefaultRatio: 0.21},
	}
}
