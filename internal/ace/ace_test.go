package ace

import (
	"math"
	"math/rand"
	"testing"
)

func TestForecasterConstantSeries(t *testing.T) {
	f := NewForecaster(8)
	for i := 0; i < 20; i++ {
		f.Observe(5)
	}
	got, ok := f.Forecast()
	if !ok || got != 5 {
		t.Fatalf("Forecast = %v, %v", got, ok)
	}
	if f.Samples() != 20 {
		t.Fatalf("Samples = %d", f.Samples())
	}
}

func TestForecasterEmpty(t *testing.T) {
	if _, ok := NewForecaster(8).Forecast(); ok {
		t.Fatal("empty forecaster claimed a forecast")
	}
}

func TestForecasterTracksShift(t *testing.T) {
	f := NewForecaster(8)
	for i := 0; i < 30; i++ {
		f.Observe(10)
	}
	for i := 0; i < 30; i++ {
		f.Observe(2)
	}
	got, _ := f.Forecast()
	if math.Abs(got-2) > 0.5 {
		t.Fatalf("after level shift forecast = %v, want ~2", got)
	}
}

func TestForecasterBeatsWorstPredictorOnNoise(t *testing.T) {
	// On iid noise around a mean, the adaptive choice should do no worse
	// than the raw last-value predictor.
	rng := rand.New(rand.NewSource(1))
	f := NewForecaster(16)
	lastErr, chosenErr := 0.0, 0.0
	prev := 0.0
	hasPrev := false
	for i := 0; i < 500; i++ {
		v := 10 + rng.NormFloat64()
		if hasPrev {
			if fc, ok := f.Forecast(); ok {
				chosenErr += math.Abs(fc - v)
			}
			lastErr += math.Abs(prev - v)
		}
		f.Observe(v)
		prev = v
		hasPrev = true
	}
	if chosenErr > lastErr {
		t.Fatalf("adaptive predictor (%.1f) lost to last-value (%.1f)", chosenErr, lastErr)
	}
}

func TestNewEnvironmentValidation(t *testing.T) {
	if _, err := NewEnvironment(nil); err == nil {
		t.Error("empty profile list accepted")
	}
	if _, err := NewEnvironment([]CodecProfile{{Name: "x", CompressMBps: 0, DefaultRatio: 0.5}}); err == nil {
		t.Error("zero throughput accepted")
	}
	if _, err := NewEnvironment([]CodecProfile{{Name: "x", CompressMBps: 5, DefaultRatio: 0}}); err == nil {
		t.Error("zero ratio accepted")
	}
}

func TestDecideRawWithoutObservations(t *testing.T) {
	e, err := NewEnvironment(DefaultDNAProfiles())
	if err != nil {
		t.Fatal(err)
	}
	d := e.Decide(1 << 20)
	if d.Codec != "" {
		t.Fatalf("with no bandwidth sensor data ACE must send raw, chose %q", d.Codec)
	}
}

func TestDecideFlipsWithBandwidth(t *testing.T) {
	// The core ACE behaviour: slow link -> compress; LAN-speed link with a
	// slow CPU -> send raw ("CPU load is not enough and Bandwidth is high").
	slow, err := NewEnvironment(DefaultDNAProfiles())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		slow.ObserveBandwidth(2) // 2 Mbps uplink
		slow.ObserveCPU(2400)
	}
	d := slow.Decide(10 << 20)
	if d.Codec == "" {
		t.Fatal("slow link: ACE should compress")
	}
	if d.PredictedMS >= d.RawMS {
		t.Fatal("slow link: compression predicted no gain")
	}

	fast, err := NewEnvironment(DefaultDNAProfiles())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		fast.ObserveBandwidth(5000) // 5 Gbps
		fast.ObserveCPU(300)        // heavily loaded client
	}
	d = fast.Decide(10 << 20)
	if d.Codec != "" {
		t.Fatalf("fast link + busy CPU: ACE should send raw, chose %q", d.Codec)
	}
}

func TestDecideUsesObservedRatios(t *testing.T) {
	// A codec whose observed ratios are far better than its default should
	// win transfers it would otherwise lose.
	profiles := []CodecProfile{
		{Name: "a", CompressMBps: 10, DefaultRatio: 0.9},
		{Name: "b", CompressMBps: 10, DefaultRatio: 0.5},
	}
	e, err := NewEnvironment(profiles)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.ObserveBandwidth(2)
		e.ObserveCPU(2400)
	}
	if d := e.Decide(1 << 20); d.Codec != "b" {
		t.Fatalf("defaults should pick b, got %q", d.Codec)
	}
	// Feed samples showing a actually achieves 0.1.
	for i := 0; i < 8; i++ {
		e.ObserveRatio("a", 0.1)
	}
	if d := e.Decide(1 << 20); d.Codec != "a" {
		t.Fatalf("after ratio samples ACE should pick a, got %q", d.Codec)
	}
	// Unknown codec samples are ignored, not fatal.
	e.ObserveRatio("ghost", 0.01)
}

func TestDecideCPUScaling(t *testing.T) {
	// Halving available CPU doubles compression cost; at the margin that
	// flips the decision to a faster codec (or raw).
	profiles := []CodecProfile{{Name: "slowcodec", CompressMBps: 0.4, DefaultRatio: 0.25}}
	e, err := NewEnvironment(profiles)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.ObserveBandwidth(2)
		e.ObserveCPU(2400)
	}
	withFastCPU := e.Decide(4 << 20)

	e2, _ := NewEnvironment(profiles)
	for i := 0; i < 10; i++ {
		e2.ObserveBandwidth(2)
		e2.ObserveCPU(600)
	}
	withSlowCPU := e2.Decide(4 << 20)
	if withFastCPU.Codec != "slowcodec" {
		t.Fatalf("fast CPU should compress, got %q", withFastCPU.Codec)
	}
	if withSlowCPU.Codec != "" {
		t.Fatalf("slow CPU should send raw, got %q", withSlowCPU.Codec)
	}
}
