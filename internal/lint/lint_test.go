package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureLoader resolves fixture import paths under testdata/src while
// module-path imports (the real compress package) and the stdlib come from
// their usual locations.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	l.FixtureRoot = filepath.Join(moduleDir, "internal", "lint", "testdata", "src")
	return l
}

// runForTest applies one analyzer to a package ignoring its Scope, so
// fixtures don't need to masquerade as module packages.
func runForTest(a *Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &diags,
		ignores:  buildIgnoreIndex(pkg.Fset, pkg.Files),
	}
	a.Run(pass)
	SortDiagnostics(diags)
	return diags
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// checkFixture loads a fixture package, runs the analyzer, and verifies
// the diagnostics against the `// want `...“ comments, analysistest-style:
// every want must be matched by exactly one diagnostic on its line and
// every diagnostic must be claimed by a want.
func checkFixture(t *testing.T, a *Analyzer, fixturePath string) {
	t.Helper()
	pkg, err := fixtureLoader(t).Load(fixturePath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixturePath, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no want comments", fixturePath)
	}

	for _, d := range runForTest(a, pkg) {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func TestClockInjectFixture(t *testing.T)  { checkFixture(t, ClockInject, "fixtures/clockinject") }
func TestDeterminismFixture(t *testing.T)  { checkFixture(t, Determinism, "fixtures/determinism") }
func TestErrTaxonomyFixture(t *testing.T)  { checkFixture(t, ErrTaxonomy, "fixtures/errtaxonomy") }
func TestRegisterInitFixture(t *testing.T) { checkFixture(t, RegisterInit, "fixtures/registerinit") }
func TestCtxPropFixture(t *testing.T)      { checkFixture(t, CtxProp, "fixtures/ctxprop") }
func TestStatsAddFixture(t *testing.T)     { checkFixture(t, StatsAdd, "fixtures/statsadd") }
func TestSpanEndFixture(t *testing.T)      { checkFixture(t, SpanEnd, "fixtures/spanend") }

func TestUntrustedFlowFixture(t *testing.T) {
	checkFixture(t, UntrustedFlow, "fixtures/untrustedflow")
}
func TestGoroutineBoundFixture(t *testing.T) {
	checkFixture(t, GoroutineBound, "fixtures/goroutinebound")
}
func TestAllocGuardFixture(t *testing.T) { checkFixture(t, AllocGuard, "fixtures/allocguard") }
func TestCopyDisciplineFixture(t *testing.T) {
	checkFixture(t, CopyDiscipline, "fixtures/copydiscipline")
}

// TestRepositoryClean is the regression gate: the whole module must stay
// free of dnalint findings. Reintroducing a violation (say, reverting the
// gsqz Corruptf conversion) fails this test and the CI lint job alike.
func TestRepositoryClean(t *testing.T) {
	diags, err := LintModule(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestScopes pins each analyzer's package scope: the measurement-path
// packages are covered, the CLIs and unrelated internals are not.
func TestScopes(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		pkg      string
		want     bool
	}{
		{Determinism, ModulePath + "/internal/compress", true},
		{Determinism, ModulePath + "/internal/compress/gsqz", true},
		{Determinism, ModulePath + "/internal/experiment", true},
		{Determinism, ModulePath + "/internal/cloud", true},
		{Determinism, ModulePath + "/internal/synth", true},
		{Determinism, ModulePath + "/cmd/experiment", false},
		{Determinism, ModulePath + "/internal/seq", false},
		{ErrTaxonomy, ModulePath + "/internal/compress/dnax", true},
		{ErrTaxonomy, ModulePath + "/internal/huffman", false},
		{CtxProp, ModulePath + "/internal/experiment", true},
		{CtxProp, ModulePath + "/internal/cloud", false},
		{ClockInject, ModulePath + "/internal/compress", true},
		{ClockInject, ModulePath + "/internal/compress/gsqz", true},
		{ClockInject, ModulePath + "/internal/cloud", true},
		{ClockInject, ModulePath + "/internal/experiment", true},
		{ClockInject, ModulePath + "/internal/serve", true},
		{ClockInject, ModulePath + "/internal/obs", false},
		{ClockInject, ModulePath + "/internal/synth", false},
		{ClockInject, ModulePath + "/cmd/dnacomp", false},
		{UntrustedFlow, ModulePath + "/internal/cloud", true},
		{UntrustedFlow, ModulePath + "/internal/serve", true},
		{UntrustedFlow, ModulePath + "/cmd/dnacomp", true},
		{UntrustedFlow, ModulePath + "/internal/compress", false},
		{AllocGuard, ModulePath + "/internal/compress", true},
		{AllocGuard, ModulePath + "/internal/compress/gsqz", true},
		{AllocGuard, ModulePath + "/internal/cloud", false},
		{CopyDiscipline, ModulePath + "/internal/compress", true},
		{CopyDiscipline, ModulePath + "/internal/cloud", true},
		{CopyDiscipline, ModulePath + "/internal/experiment", true},
		{CopyDiscipline, ModulePath + "/internal/stats", true},
		{CopyDiscipline, ModulePath + "/internal/obs", false},
	}
	for _, c := range cases {
		if got := c.analyzer.Scope(c.pkg); got != c.want {
			t.Errorf("%s.Scope(%s) = %v, want %v", c.analyzer.Name, c.pkg, got, c.want)
		}
	}
	for _, a := range []*Analyzer{RegisterInit, StatsAdd, GoroutineBound, SpanEnd} {
		if a.Scope != nil {
			t.Errorf("%s should apply to every package", a.Name)
		}
	}
}

// TestIgnoreDirective verifies both placements of //lint:ignore and that a
// directive missing its reason stays inert.
func TestIgnoreDirective(t *testing.T) {
	pkg, err := fixtureLoader(t).Load("fixtures/ignore")
	if err != nil {
		t.Fatal(err)
	}
	diags := runForTest(Determinism, pkg)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics %v, want exactly the reasonless-directive line", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "time.Now") {
		t.Errorf("surviving diagnostic = %s", diags[0])
	}
}

// TestDiagnosticOrderStable: the linter's own output must be deterministic.
func TestDiagnosticOrderStable(t *testing.T) {
	pkg, err := fixtureLoader(t).Load("fixtures/determinism")
	if err != nil {
		t.Fatal(err)
	}
	first := fmt.Sprint(runForTest(Determinism, pkg))
	for i := 0; i < 3; i++ {
		if again := fmt.Sprint(runForTest(Determinism, pkg)); again != first {
			t.Fatalf("diagnostic order changed between runs:\n%s\nvs\n%s", first, again)
		}
	}
}

// TestModulePackages sanity-checks the ./... universe the standalone
// driver analyzes.
func TestModulePackages(t *testing.T) {
	moduleDir, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		ModulePath + "/cmd/dnalint",
		ModulePath + "/examples/quickstart",
		ModulePath + "/internal/compress",
		ModulePath + "/internal/lint",
	}
	have := map[string]bool{}
	for _, p := range pkgs {
		have[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into the universe: %s", p)
		}
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("ModulePackages missing %s (got %d packages)", w, len(pkgs))
		}
	}
}
