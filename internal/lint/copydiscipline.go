package lint

import (
	"go/ast"
)

// CopyDiscipline guards the deep-copy convention at exported API
// boundaries. The Cache.Get/copySlices bug class (PRs 3/6): a method
// returns a struct fished out of an internal map, the caller mutates its
// slice fields, and the cache is silently corrupted — or, in the store
// direction, a caller's slice is stored as-is and the store's contents
// mutate when the caller reuses the buffer. Exported methods must hand
// out and take in copies of anything slice-bearing.
//
// The analysis runs in two directions per exported method:
//
//   - alias-out: values derived from receiver state (field reads, map
//     lookups on receiver fields) must not be returned while still
//     aliasing that state;
//   - alias-in: parameter-derived values must not be assigned into
//     receiver state.
//
// `append([]T(nil), s...)` breaks the alias (append taint follows only
// the first argument here), and a method call on the value — the
// r.copySlices() idiom — is trusted to have replaced the aliased memory.
var CopyDiscipline = &Analyzer{
	Name: "copydiscipline",
	Doc: `flags exported methods that return memory aliasing receiver state
(field slices, map entries holding slices) or that store caller-provided
slice-bearing values into receiver state without a deep copy. Break the
alias with append([]T(nil), s...) or a copySlices-style helper before the
value crosses the API boundary. Scope: internal/compress, internal/cloud,
internal/experiment, internal/stats, internal/dtree.`,
	Scope: scopeUnder("internal/compress", "internal/cloud", "internal/experiment", "internal/stats", "internal/dtree"),
	Run:   runCopyDiscipline,
}

func runCopyDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recv := receiverObject(pass, fd)
			if recv == nil {
				continue
			}
			checkAliasOut(pass, fd, recv)
			checkAliasIn(pass, fd, recv)
		}
	}
}

// receiverObject resolves the method's receiver variable.
func receiverObject(pass *Pass, fd *ast.FuncDecl) ast.Expr {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// aliasFlowConfig is the shared alias-tracking configuration: calls return
// fresh memory (PropagateCalls off), append aliases only its first
// argument, and copy-in-place calls kill.
func aliasFlowConfig(pass *Pass) FlowConfig {
	return FlowConfig{
		Info:            pass.Info,
		AppendAliasOnly: true,
		KillOnCall:      true,
		TaintableType:   containsSliceType,
	}
}

// checkAliasOut flags returns of receiver-state-aliasing values.
func checkAliasOut(pass *Pass, fd *ast.FuncDecl, recv ast.Expr) {
	recvObj := identObject(pass.Info, recv.(*ast.Ident))
	if recvObj == nil {
		return
	}
	cfg := aliasFlowConfig(pass)
	cfg.SourceExpr = func(e ast.Expr) bool {
		// A selector (or map/slice index of a selector) rooted at the
		// receiver whose type carries a slice is live internal state.
		switch e := e.(type) {
		case *ast.SelectorExpr:
			return rootObject(pass.Info, e) == recvObj && hasAliasType(pass, e)
		case *ast.IndexExpr:
			return rootObject(pass.Info, e.X) == recvObj && hasAliasType(pass, e)
		}
		return false
	}
	cfg.At = func(n ast.Node, tainted func(e ast.Expr) bool) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if hasAliasType(pass, res) && tainted(res) {
				pass.Reportf(ret.Pos(), "exported method %s returns memory aliasing receiver state; callers can mutate internal slices — return a copy (append([]T(nil), s...) or a copySlices-style helper)", fd.Name.Name)
				break
			}
		}
	}
	RunTaintFlow(fd.Body, cfg)
}

// checkAliasIn flags stores of parameter-aliasing values into receiver state.
func checkAliasIn(pass *Pass, fd *ast.FuncDecl, recv ast.Expr) {
	recvObj := identObject(pass.Info, recv.(*ast.Ident))
	if recvObj == nil {
		return
	}
	cfg := aliasFlowConfig(pass)
	cfg.Seed = func(st State) {
		if fd.Type.Params == nil {
			return
		}
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj != nil && containsSliceType(obj.Type()) {
					st[obj] = true
				}
			}
		}
	}
	cfg.At = func(n ast.Node, tainted func(e ast.Expr) bool) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if rootObject(pass.Info, lhs) != recvObj {
				continue
			}
			// Only writes THROUGH the receiver (field, map entry) store
			// into shared state; rebinding the receiver variable itself
			// (value receiver) is local.
			if _, isIdent := unparen(lhs).(*ast.Ident); isIdent {
				continue
			}
			if hasAliasType(pass, as.Rhs[i]) && tainted(as.Rhs[i]) {
				pass.Reportf(as.Pos(), "exported method %s stores a caller-provided slice-bearing value into receiver state without copying; the caller's later writes mutate internal state — deep-copy first", fd.Name.Name)
				break
			}
		}
	}
	RunTaintFlow(fd.Body, cfg)
}

// hasAliasType reports whether e's static type carries aliasable memory.
func hasAliasType(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return containsSliceType(tv.Type)
}
