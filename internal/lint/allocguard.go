package lint

import (
	"go/ast"
	"go/types"
)

// AllocGuard generalizes the CXB1 hostile-header discipline: a decoded
// size field is an attacker's claim, and `make` must never size an
// allocation from a claim that no comparison has bounded. The canonical
// in-repo shape is OpenBlocks' `count > uint64(avail/12)` check before
// `make([]BlockEntry, count)` — the claim is compared against the bytes
// actually present. The other sanctioned shapes are clamping through
// compress.HeaderPrealloc (or the min builtin) and growing incrementally
// with append inside a loop bounded by the claim, which allocates in
// proportion to work actually done.
var AllocGuard = &Analyzer{
	Name: "allocguard",
	Doc: `flags make() calls whose length or capacity derives from a decoded
header field (encoding/binary reads, fib.Decode) with no dominating bound:
no comparison of the value against a limit, no min()/compress.HeaderPrealloc
clamp. Hostile-size claims must be checked against the bytes actually
present before memory is committed (cf. OpenBlocks' count≤avail/12).
Scope: internal/compress and its codec subpackages.`,
	Scope: scopeUnder("internal/compress"),
	Run:   runAllocGuard,
}

func runAllocGuard(pass *Pass) {
	fibPath := ModulePath + "/internal/fib"
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			RunTaintFlow(fd.Body, FlowConfig{
				Info: pass.Info,
				SourceCall: func(call *ast.CallExpr) bool {
					fn := calleeFunc(pass.Info, call)
					if fn == nil {
						return false
					}
					if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
						switch fn.Name() {
						// Package-level varint decoders and the ByteOrder
						// methods are the repo's only wire-integer readers.
						case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
							"Uint16", "Uint32", "Uint64":
							return true
						}
						return false
					}
					return isPkgFunc(fn, fibPath, "Decode")
				},
				Sanitizer: func(call *ast.CallExpr) bool {
					fn := calleeFunc(pass.Info, call)
					return isPkgFunc(fn, CompressPath, "HeaderPrealloc") ||
						isPkgFunc(fn, CompressPath, "HeaderPreallocN")
				},
				// Calls are opaque: a helper's result is not presumed to
				// carry header taint, keeping the check precise; helpers
				// that decode headers get analyzed as their own function
				// bodies.
				PropagateCalls:   false,
				GuardComparisons: true,
				At: func(n ast.Node, tainted func(ast.Expr) bool) {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return
					}
					id, ok := unparen(call.Fun).(*ast.Ident)
					if !ok {
						return
					}
					if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
						return
					}
					for _, arg := range call.Args[1:] {
						if tainted(arg) {
							pass.Reportf(call.Pos(), "make() sized by a decoded header field with no dominating bound check; compare the claim against the bytes actually present (cf. OpenBlocks count≤avail/12) or clamp with compress.HeaderPrealloc and grow by append")
							break
						}
					}
				},
			})
		}
	}
}
