package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// RegisterInit guards the codec registry's enumeration stability.
// compress.Names feeds experiment grids, CSV columns and cache keys;
// registration outside init (ordering then depends on call sites) or under
// a computed name (the set depends on runtime state) would make the
// enumeration unstable between runs and builds.
var RegisterInit = &Analyzer{
	Name: "registerinit",
	Doc: `requires every compress.Register call to appear directly inside a
func init() body with a constant lowercase-alphanumeric name literal, so
the registry contents are a build-time property.`,
	Run: runRegisterInit,
}

var codecNameRE = regexp.MustCompile(`^[a-z0-9]+$`)

func runRegisterInit(pass *Pass) {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if !isRegister(fn) {
				return true
			}
			if !directlyInInit(stack) {
				pass.Reportf(call.Pos(), "compress.Register must be called directly from func init(); registering at runtime makes the codec enumeration unstable")
			}
			if len(call.Args) > 0 {
				name, known := constantString(pass.Info, call.Args[0])
				switch {
				case !known:
					pass.Reportf(call.Args[0].Pos(), "compress.Register requires a constant string literal codec name; a computed name makes the registry contents a runtime property")
				case !codecNameRE.MatchString(name):
					pass.Reportf(call.Args[0].Pos(), "codec name %q must be lowercase alphanumeric to match CLI flags, CSV columns and cache keys", name)
				}
			}
			return true
		})
	}
}

func isRegister(fn *types.Func) bool {
	return isPkgFunc(fn, CompressPath, "Register")
}

// directlyInInit reports whether the innermost enclosing function is a
// func init() declaration — with no function literal in between, which
// would defer the call to whenever the literal runs.
func directlyInInit(stack []ast.Node) bool {
	fn := enclosingFunc(stack)
	fd, ok := fn.(*ast.FuncDecl)
	return ok && fd.Recv == nil && fd.Name.Name == "init"
}
