package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrTaxonomy guards the corrupt-stream error taxonomy. Round-trip
// verification, the result cache and the fuzz harness all classify decode
// failures with errors.Is(err, compress.ErrCorrupt); a bare fmt.Errorf in a
// Decompress path mints an error outside that taxonomy and the failure
// stops being recognizable as corruption.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc: `flags fmt.Errorf calls reachable from a Decompress function whose
format neither wraps with %w nor goes through compress.Corruptf, so
errors.Is(err, compress.ErrCorrupt) keeps classifying corrupt streams.
Scope: internal/compress and its codec subpackages.`,
	Scope: scopeUnder("internal/compress"),
	Run:   runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) {
	// Map each package-level function object to its declaration so the
	// reachability walk can follow same-package calls.
	decls := map[*types.Func]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			if fd.Name.Name == "Decompress" {
				roots = append(roots, fd)
			}
		}
	}
	if len(roots) == 0 {
		return
	}

	// Breadth-first over static same-package calls from the Decompress
	// roots. Function literals inside a reachable declaration are part of
	// its body and are walked with it.
	reachable := map[*ast.FuncDecl]bool{}
	queue := append([]*ast.FuncDecl(nil), roots...)
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if reachable[fd] {
			continue
		}
		reachable[fd] = true
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			if next, ok := decls[callee]; ok && !reachable[next] {
				queue = append(queue, next)
			}
			return true
		})
	}

	for fd := range reachable {
		// Corruptf is the taxonomy's own constructor: its fmt.Errorf
		// necessarily builds "%w: "+format from a caller-supplied string.
		// Flagging it would demand Corruptf go through Corruptf.
		if fd.Name.Name == "Corruptf" {
			continue
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if !isPkgFunc(callee, "fmt", "Errorf") || len(call.Args) == 0 {
				return true
			}
			format, known := constantString(pass.Info, call.Args[0])
			switch {
			case !known:
				pass.Reportf(call.Pos(), "fmt.Errorf with non-constant format in a Decompress path; use compress.Corruptf so errors.Is(err, compress.ErrCorrupt) holds")
			case !strings.Contains(format, "%w"):
				pass.Reportf(call.Pos(), "error minted in a Decompress path without %%w or compress.Corruptf; corrupt streams become invisible to errors.Is(err, compress.ErrCorrupt)")
			}
			return true
		})
	}
}

// constantString evaluates e as a compile-time string constant.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
