package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineBound demands every `go` statement live inside a recognized
// bounded-pool shape. The repository's concurrency idiom (RunParallel,
// BlockCompress, ExchangeBlocks' transferPool, the fleet's replica
// fan-outs) is a fixed worker count joined by a sync.WaitGroup; a stray
// fire-and-forget goroutine is a leak under the service workloads the
// ROADMAP is heading toward, and — worse — an unjoined writer racing the
// function's return. The fleet's quorum writes make the stakes concrete:
// an abandoned replica goroutine is a shard write racing the ack count.
// Shapes accepted:
//
//   - WaitGroup pool: wg.Add before the go statement, wg.Done inside the
//     goroutine, wg.Wait somewhere in the function.
//   - Semaphore: a channel send (acquire) before the go statement with the
//     matching receive (release) inside the goroutine.
//   - Completion join: the goroutine sends on a channel the function
//     unconditionally receives from after the spawn. A receive inside a
//     select does NOT count — select can take the other arm and abandon
//     the goroutine — so such sites need a justified //lint:ignore.
var GoroutineBound = &Analyzer{
	Name: "goroutinebound",
	Doc: `flags go statements outside a recognized bounded-pool shape: a
sync.WaitGroup pool (Add before, Done inside, Wait in the function), a
semaphore channel (send before, receive inside), or a completion join
(send inside, unconditional receive after). Fire-and-forget goroutines
need a //lint:ignore goroutinebound with the reason they may outlive
their spawner. Scope: every package.`,
	Scope: nil,
	Run:   runGoroutineBound,
}

func runGoroutineBound(pass *Pass) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Shape evidence (Add/Done/Wait, channel sends/receives) is
			// searched in the whole declaration, so a goroutine inside a
			// nested literal may be joined by its outer function — the
			// transferPool worker/feeder split depends on that.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !boundedShape(pass.Info, fd, g) {
					pass.Reportf(g.Pos(), "go statement outside a recognized bounded-pool shape (WaitGroup Add/Done/Wait, semaphore channel, or unconditional completion join); unjoined goroutines leak — join it or justify with //lint:ignore goroutinebound <reason>")
				}
				return true
			})
		}
	}
}

// boundedShape reports whether the go statement g inside fd matches one of
// the accepted pool shapes.
func boundedShape(info *types.Info, fd *ast.FuncDecl, g *ast.GoStmt) bool {
	var body *ast.BlockStmt
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	}
	inside := func(n ast.Node) bool {
		return body != nil && body.Pos() <= n.Pos() && n.End() <= body.End()
	}

	// --- WaitGroup pool -------------------------------------------------
	type wgEvidence struct{ addBefore, doneInside, wait bool }
	wgs := map[types.Object]*wgEvidence{}
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Add" && name != "Done" && name != "Wait" {
			return true
		}
		obj := rootObject(info, sel.X)
		if obj == nil || !isWaitGroup(obj.Type()) {
			return true
		}
		ev := wgs[obj]
		if ev == nil {
			ev = &wgEvidence{}
			wgs[obj] = ev
		}
		switch name {
		case "Add":
			if !inside(call) && call.Pos() < g.Pos() {
				ev.addBefore = true
			}
		case "Done":
			if inside(call) {
				ev.doneInside = true
			}
		case "Wait":
			if !inside(call) {
				ev.wait = true
			}
		}
		return true
	})
	for _, ev := range wgs {
		if ev.addBefore && ev.doneInside && ev.wait {
			return true
		}
	}

	// --- channel shapes -------------------------------------------------
	type chEvidence struct {
		sendBefore, recvInside bool // semaphore: acquire outside, release in
		sendInside             bool // completion join: result sent from worker
		recvAfterPlain         bool // ...received unconditionally after spawn
	}
	chs := map[types.Object]*chEvidence{}
	evFor := func(e ast.Expr) *chEvidence {
		obj := rootObject(info, e)
		if obj == nil {
			return nil
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
			return nil
		}
		ev := chs[obj]
		if ev == nil {
			ev = &chEvidence{}
			chs[obj] = ev
		}
		return ev
	}
	inspectStack(fd, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if ev := evFor(n.Chan); ev != nil {
				if inside(n) {
					ev.sendInside = true
				} else if n.Pos() < g.Pos() {
					ev.sendBefore = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			ev := evFor(n.X)
			if ev == nil {
				return true
			}
			if inside(n) {
				ev.recvInside = true
			} else if n.Pos() > g.End() && !underSelect(stack, fd) {
				ev.recvAfterPlain = true
			}
		case *ast.RangeStmt:
			// `for range ch` after the spawn drains the channel — an
			// unconditional join.
			if ev := evFor(n.X); ev != nil && !inside(n) && n.Pos() > g.End() {
				ev.recvAfterPlain = true
			}
		}
		return true
	})
	for _, ev := range chs {
		if ev.sendBefore && ev.recvInside {
			return true
		}
		if ev.sendInside && ev.recvAfterPlain {
			return true
		}
	}
	return false
}

// underSelect reports whether the innermost enclosing branch construct on
// the stack is a select statement — a receive there is conditional.
func underSelect(stack []ast.Node, fd *ast.FuncDecl) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.SelectStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	_ = fd
	return false
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly via pointer).
func isWaitGroup(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
