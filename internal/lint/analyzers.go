package lint

// All returns the full dnalint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ClockInject,
		CtxProp,
		Determinism,
		ErrTaxonomy,
		RegisterInit,
		StatsAdd,
	}
}
