package lint

// All returns the full dnalint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AllocGuard,
		ClockInject,
		CopyDiscipline,
		CtxProp,
		Determinism,
		ErrTaxonomy,
		GoroutineBound,
		RegisterInit,
		SpanEnd,
		StatsAdd,
		UntrustedFlow,
	}
}
