package lint

// All returns the full dnalint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxProp,
		Determinism,
		ErrTaxonomy,
		RegisterInit,
		StatsAdd,
	}
}
