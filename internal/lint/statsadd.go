package lint

import (
	"go/ast"
	"go/types"
)

// StatsAdd guards compress.Stats accumulation semantics. WorkNS sums
// across operations but PeakMem is a running maximum — the paper's
// RAM_USED variable, which the cloud cost model feeds into RAM-pressure
// scaling. Stats.Add encodes both; a direct field write at a call site
// (`st.PeakMem += other.PeakMem`) silently turns the max into a sum and
// inflates every memory figure downstream.
var StatsAdd = &Analyzer{
	Name: "statsadd",
	Doc: `flags direct writes (=, +=, ++, ...) to compress.Stats fields
outside the Stats methods themselves; accumulate through Stats.Add and
construct fresh values with composite literals.`,
	Run: runStatsAdd,
}

// statsFields are the Stats fields with accumulation semantics worth
// protecting.
var statsFields = map[string]bool{"WorkNS": true, "PeakMem": true}

func runStatsAdd(pass *Pass) {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkStatsWrite(pass, lhs, stack)
				}
			case *ast.IncDecStmt:
				checkStatsWrite(pass, n.X, stack)
			}
			return true
		})
	}
}

func checkStatsWrite(pass *Pass, lhs ast.Expr, stack []ast.Node) {
	se, ok := unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	sel, ok := pass.Info.Selections[se]
	if !ok || sel.Kind() != types.FieldVal {
		return
	}
	field, ok := sel.Obj().(*types.Var)
	if !ok || !statsFields[field.Name()] {
		return
	}
	if !isCompressStats(sel.Recv()) {
		return
	}
	if insideStatsMethod(pass, stack) {
		return
	}
	pass.Reportf(lhs.Pos(), "direct write to compress.Stats.%s; accumulate via Stats.Add (PeakMem is a maximum, not a sum) or build a fresh Stats literal", field.Name())
}

func isCompressStats(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == CompressPath && obj.Name() == "Stats"
}

// insideStatsMethod reports whether the write happens inside a method whose
// receiver is compress.Stats — the one place allowed to touch the fields.
func insideStatsMethod(pass *Pass, stack []ast.Node) bool {
	fd, ok := enclosingFunc(stack).(*ast.FuncDecl)
	if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	return ok && isCompressStats(tv.Type)
}
