// Package lint implements dnalint: a suite of static analyzers enforcing
// the repository's determinism, error-taxonomy and codec-contract
// invariants (see DESIGN.md §"Static analysis & invariants").
//
// The paper's result rests on reproducible per-(file × context × codec)
// measurements. The experiment pipeline is byte-deterministic for any jobs
// value, round-trip verification relies on errors.Is(err, compress.ErrCorrupt),
// the registry enumeration is stable, and Stats.PeakMem carries max — not
// sum — semantics. Nothing but convention stops a refactor from breaking
// any of these silently; this package turns the conventions into
// compiler-checked rules.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Reportf) on the standard library alone, so the repository keeps its
// zero-dependency property. cmd/dnalint drives the suite standalone and as
// a `go vet -vettool`.
//
// Suppressions: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] reason
//
// (or `//lint:ignore all reason`) silences the named analyzers on the same
// line and the line below, so it works both as a trailing comment and as a
// directive above the offending statement. The reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is this repository's module path; the analyzers key their
// package scopes and codec-contract symbols off it.
const ModulePath = "github.com/srl-nuces/ctxdna"

// CompressPath is the import path of the codec registry package whose
// contract (Register, Stats, ErrCorrupt/Corruptf) several analyzers guard.
const CompressPath = ModulePath + "/internal/compress"

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the one-paragraph description printed by `dnalint -help`.
	Doc string
	// Scope reports whether the analyzer applies to a package path.
	// nil means every package. Test files (*_test.go) are always skipped:
	// the invariants guard production measurement paths.
	Scope func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags   *[]Diagnostic
	ignores ignoreIndex
}

// Diagnostic is one finding, positioned for file:line:col display.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless the position falls in a test
// file or under a matching //lint:ignore directive.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.ignores.ignored(position.Filename, position.Line, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IgnoreDirective is one //lint:ignore comment found in a package. The
// suite keeps directive identity (not just line coverage) so the stale-
// suppression audit can report directives that no longer silence anything.
type IgnoreDirective struct {
	// Pos is the directive comment's own position.
	Pos token.Position
	// Analyzers are the names the directive silences ("all" matches every
	// analyzer).
	Analyzers []string
	// Reason is the mandatory justification text after the analyzer list;
	// empty means the directive is malformed and suppresses nothing.
	Reason string

	used bool
}

// Used reports whether the directive suppressed at least one finding
// during the analyzer runs that shared its index.
func (d *IgnoreDirective) Used() bool { return d.used }

// Malformed reports a directive missing its mandatory reason; such
// directives are inert and the audit flags them.
func (d *IgnoreDirective) Malformed() bool { return d.Reason == "" }

func (d *IgnoreDirective) String() string {
	label := strings.Join(d.Analyzers, ",")
	if d.Malformed() {
		return fmt.Sprintf("%s:%d: //lint:ignore %s (malformed: missing reason)", d.Pos.Filename, d.Pos.Line, label)
	}
	return fmt.Sprintf("%s:%d: //lint:ignore %s %s", d.Pos.Filename, d.Pos.Line, label, d.Reason)
}

// ignoreIndex maps file -> line -> the directives covering that line.
type ignoreIndex struct {
	byLine map[string]map[int][]*IgnoreDirective
	list   []*IgnoreDirective
}

// ignored reports whether a directive silences analyzer at file:line, and
// marks every matching directive used.
func (ix ignoreIndex) ignored(file string, line int, analyzer string) bool {
	hit := false
	for _, d := range ix.byLine[file][line] {
		if d.Malformed() {
			continue
		}
		for _, name := range d.Analyzers {
			if name == "all" || name == analyzer {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// buildIgnoreIndex scans the package's comments for lint:ignore directives.
// A directive covers its own line (trailing-comment form) and the line
// below (directive-above form). Malformed directives (no reason) are kept
// in the list — inert for suppression, visible to the audit.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ix := ignoreIndex{byLine: map[string]map[int][]*IgnoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimPrefix(text, "lint:ignore")
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // not even an analyzer list; nothing to audit
				}
				d := &IgnoreDirective{
					Pos:       fset.Position(c.Pos()),
					Analyzers: strings.Split(fields[0], ","),
				}
				if len(fields) > 1 {
					d.Reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				ix.list = append(ix.list, d)
				m := ix.byLine[d.Pos.Filename]
				if m == nil {
					m = map[int][]*IgnoreDirective{}
					ix.byLine[d.Pos.Filename] = m
				}
				m[d.Pos.Line] = append(m[d.Pos.Line], d)
				m[d.Pos.Line+1] = append(m[d.Pos.Line+1], d)
			}
		}
	}
	return ix
}

// RunPackage applies every in-scope analyzer to pkg and returns the
// findings sorted by position — the suite's own output must be
// deterministic.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunPackageIgnores(pkg, analyzers)
	return diags
}

// RunPackageIgnores is RunPackage plus the package's //lint:ignore
// directives, with Used() reflecting which ones suppressed a finding —
// the input to the stale-suppression audit.
func RunPackageIgnores(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []*IgnoreDirective) {
	var diags []Diagnostic
	ignores := buildIgnoreIndex(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			ignores:  ignores,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags, ignores.list
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// scopeUnder builds a Scope function matching the module-relative package
// paths rels and, where the rel names a parent, all packages beneath it.
func scopeUnder(rels ...string) func(string) bool {
	return func(pkgPath string) bool {
		rel := strings.TrimPrefix(pkgPath, ModulePath+"/")
		if rel == pkgPath && pkgPath != ModulePath {
			return false // not in this module
		}
		for _, want := range rels {
			if rel == want || strings.HasPrefix(rel, want+"/") {
				return true
			}
		}
		return false
	}
}

// --- shared AST/type helpers -------------------------------------------

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for calls through variables, builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// inspectStack walks root like ast.Inspect while maintaining the stack of
// enclosing nodes (outermost first, not including n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost function node (FuncDecl or FuncLit)
// on the stack, or nil at package scope.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// objectOf resolves the root object an expression refers to: the variable
// behind an identifier or the field behind a selector. Returns nil for
// anything else.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
