package lint

import (
	"go/ast"
	"go/types"
)

// Determinism guards the measurement pipeline's byte-for-byte
// reproducibility: the same (file × context × codec) grid must come out
// identical on every run and for any -jobs value. Wall-clock reads,
// unseeded global randomness and map-iteration order are the three ways a
// refactor silently breaks that.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: `flags nondeterminism sources in measurement-path packages:
time.Now / time.Since calls, unseeded global math/rand functions, and
map-range loops whose bodies feed slices or writers without a subsequent
sort. Scope: internal/compress/..., internal/experiment, internal/cloud,
internal/synth (non-test files).`,
	Scope: scopeUnder("internal/compress", "internal/experiment", "internal/cloud", "internal/synth"),
	Run:   runDeterminism,
}

// seededRandFuncs are the math/rand entry points that construct explicitly
// seeded generators; everything else at package level draws from the
// global, nondeterministically-scheduled source.
var seededRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, stack)
			}
			return true
		})
	}
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. *rand.Rand.Intn) are fine: the receiver was seeded
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in a measurement path: results must not depend on wall clock; use the modeled cost figures (compress.Stats) or thread an explicit timestamp", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "rand.%s draws from the unseeded global source; use rand.New(rand.NewSource(seed)) so runs reproduce", fn.Name())
		}
	}
}

// checkMapRange flags `for ... range m` over a map whose body appends to a
// slice that is never sorted afterwards in the same function, or writes
// directly to an output sink — both leak random iteration order into
// results.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	var appendTargets []types.Object
	wroteOutput := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				if obj := objectOf(pass.Info, n.Lhs[i]); obj != nil {
					appendTargets = append(appendTargets, obj)
				}
			}
		case *ast.CallExpr:
			if isOutputCall(pass.Info, n) {
				wroteOutput = true
			}
		}
		return true
	})

	if wroteOutput {
		pass.Reportf(rng.Pos(), "map iteration order is random but this range writes output directly; collect the keys, sort them, then iterate")
		return
	}
	if len(appendTargets) == 0 {
		return
	}
	if fn := enclosingFunc(stack); fn != nil && sortedAfter(pass.Info, fn, rng, appendTargets) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is random but this range appends to a slice that is never sorted; sort it before use (cf. compress.Names)")
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outputMethodNames are io.Writer-shaped sinks; emitting during a map range
// bakes random order into the output stream.
var outputMethodNames = map[string]bool{"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true}

func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return outputMethodNames[fn.Name()]
	}
	return false
}

// sortedAfter reports whether, after the range statement, the enclosing
// function calls a sort/slices ordering function on one of the append
// targets — the canonical collect-then-sort idiom.
func sortedAfter(info *types.Info, fn ast.Node, rng *ast.RangeStmt, targets []types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			referenced := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					obj := info.Uses[id]
					for _, t := range targets {
						if obj == t {
							referenced = true
						}
					}
				}
				return !referenced
			})
			if referenced {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
