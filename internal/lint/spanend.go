package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd guards the tracing layer's one lifecycle rule: every span opened
// with obs.Start must be ended, or request traces silently lose their
// inner spans (a leaked span never reaches the tracer's finished-record
// list, so ?trace=1 exports, the -trace sink and the obs-trace gate all
// see a hole where the work happened). A span is considered reliably
// ended when End is deferred (directly or inside a deferred closure),
// called unconditionally later in the same block as the Start, or called
// inside any function literal (the serve queue pattern, where the worker
// closure ends the wait span). A span that escapes the function — stored
// in a struct, passed along, returned — is someone else's responsibility
// and stays clean. Discarding the span outright, or ending it only on
// some control-flow paths, is flagged.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: `flags spans from obs.Start that are discarded or not reliably ended:
clean means defer span.End() (directly or in a deferred closure), an
unconditional End later in the same block, an End inside a function
literal, or the span escaping the function. Conditional-only Ends leak
the span on the other paths. Scope: every module package.`,
	Run: runSpanEnd,
}

// obsPath is the tracing package whose Start contract SpanEnd enforces.
const obsPath = ModulePath + "/internal/obs"

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Files {
		inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(calleeFunc(pass.Info, call), obsPath, "Start") {
				return true
			}
			checkStartCall(pass, call, stack)
			return true
		})
	}
}

// checkStartCall classifies one obs.Start call site given the enclosing
// node stack (outermost first, excluding the call itself).
func checkStartCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	assign, ok := parent.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 2 {
		// Both results dropped (expression statement), or the tuple used in
		// some shape that cannot bind the span to a variable.
		pass.Reportf(call.Pos(), "span from obs.Start is discarded; bind it and defer its End")
		return
	}
	spanExpr := unparen(assign.Lhs[1])
	id, ok := spanExpr.(*ast.Ident)
	if !ok {
		return // field/index destination: the span escapes, ended elsewhere
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "span from obs.Start is discarded; bind it and defer its End")
		return
	}
	obj := pass.Info.Defs[id]
	if obj == nil {
		obj = pass.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	fn := enclosingFunc(stack)
	if fn == nil {
		return
	}
	block := enclosingBlock(stack)
	if spanHandled(pass.Info, fn, obj, assign, block) {
		return
	}
	pass.Reportf(call.Pos(), "span %s is not reliably ended: defer %s.End() or end it unconditionally in the same block", id.Name, id.Name)
}

// enclosingBlock returns the innermost *ast.BlockStmt on the stack.
func enclosingBlock(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return nil
}

// spanHandled scans the enclosing function for a use of the span object
// that guarantees End runs (or moves responsibility elsewhere): a deferred
// End, an End inside any function literal, an unconditional End later in
// assignBlock, or the span escaping through a call, return or assignment.
func spanHandled(info *types.Info, fn ast.Node, obj types.Object, assign *ast.AssignStmt, assignBlock *ast.BlockStmt) bool {
	handled := false
	inspectStack(fn, func(n ast.Node, stack []ast.Node) bool {
		if handled {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if isDefinition(stack, assign) {
			return true
		}
		sel, selOK := parentAt(stack, 0).(*ast.SelectorExpr)
		callP, callOK := parentAt(stack, 1).(*ast.CallExpr)
		if selOK && callOK && sel.X == id && callP.Fun == sel {
			// A method call on the span. End counts when its execution is
			// guaranteed; SetAttr and friends prove nothing.
			if sel.Sel.Name != "End" {
				return true
			}
			if guaranteedEnd(stack, fn, assign, assignBlock) {
				handled = true
			}
			return true
		}
		// Any non-receiver use — argument, return value, RHS of another
		// assignment, composite literal, comparison — means the span leaves
		// our sight; conservatively treat it as handled elsewhere.
		handled = true
		return true
	})
	return handled
}

// isDefinition reports whether the identifier use at stack is the LHS of
// the obs.Start assignment itself.
func isDefinition(stack []ast.Node, assign *ast.AssignStmt) bool {
	return len(stack) > 0 && stack[len(stack)-1] == assign
}

// parentAt returns the stack entry up levels above the immediate parent
// (0 = immediate parent), or nil.
func parentAt(stack []ast.Node, up int) ast.Node {
	i := len(stack) - 1 - up
	if i < 0 {
		return nil
	}
	return stack[i]
}

// guaranteedEnd reports whether the End call whose receiver-use stack is
// given always runs once the function returns: it is deferred (directly or
// via a deferred closure), sits inside any function literal below fn, or
// is an unconditional statement of assignBlock after the assignment.
func guaranteedEnd(stack []ast.Node, fn ast.Node, assign *ast.AssignStmt, assignBlock *ast.BlockStmt) bool {
	for i, n := range stack {
		switch n.(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			if n != fn {
				return true
			}
		case *ast.BlockStmt:
			// An ExprStmt directly inside the assignment's own block, after
			// the assignment, runs unconditionally (or not at all because an
			// earlier return fired — in which case that path was analyzed on
			// its own End).
			if n == assignBlock && i+1 < len(stack) {
				if es, ok := stack[i+1].(*ast.ExprStmt); ok && es.Pos() > assign.End() {
					return true
				}
			}
		}
	}
	return false
}
