// Package statsadd is a dnalint fixture: compress.Stats fields are only
// written by the Stats methods; call sites accumulate through Stats.Add.
package statsadd

import "github.com/srl-nuces/ctxdna/internal/compress"

func accumulateWrong(runs []compress.Stats) compress.Stats {
	var total compress.Stats
	for _, st := range runs {
		total.WorkNS += st.WorkNS   // want `Stats\.WorkNS`
		total.PeakMem += st.PeakMem // want `Stats\.PeakMem`
	}
	return total
}

func accumulateRight(runs []compress.Stats) compress.Stats {
	var total compress.Stats
	for _, st := range runs {
		total.Add(st) // ok: Add keeps PeakMem a maximum
	}
	return total
}

func fresh(work int64, peak int) compress.Stats {
	return compress.Stats{WorkNS: work, PeakMem: peak} // ok: composite literal construction
}

func bump(st *compress.Stats) {
	st.WorkNS++ // want `Stats\.WorkNS`
}

func reset(st *compress.Stats) {
	st.PeakMem = 0 // want `Stats\.PeakMem`
}

type other struct{ WorkNS int64 }

func unrelated(o *other) {
	o.WorkNS += 1 // ok: same field name on an unrelated type
}
