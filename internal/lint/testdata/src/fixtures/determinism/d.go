// Package determinism is a dnalint fixture: each `want` comment marks an
// expected diagnostic; lines without one must stay clean.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now`
	return time.Since(start) // want `time\.Since`
}

func globalRand() int {
	return rand.Intn(10) // want `unseeded global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `unseeded global source`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) // ok: method on an explicitly seeded generator
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `never sorted`
		keys = append(keys, k)
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: collect-then-sort idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceSortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: sorted through sort.Slice
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func printDirect(m map[string]int) {
	for k, v := range m { // want `writes output directly`
		fmt.Println(k, v)
	}
}

func normalize(m map[string]float64) {
	for k := range m { // ok: writes only back into the map
		m[k] /= 2
	}
}

func rangeSlice(xs []string) []string {
	var out []string
	for _, x := range xs { // ok: slices iterate in order
		out = append(out, x)
	}
	return out
}

func suppressed() time.Time {
	//lint:ignore determinism fixture exercises the suppression directive
	return time.Now()
}
