// Package copydiscipline is a dnalint fixture for the deep-copy
// convention at exported API boundaries — the Cache.Get/copySlices bug
// class: internal slice-bearing state must not leak out aliased, and
// caller-provided slices must not be stored aliased.
package copydiscipline

type entry struct {
	data []byte
	hits int
}

// copyData is the copySlices-style helper: a method call on the value is
// trusted to have replaced the aliased memory.
func (e *entry) copyData() { e.data = append([]byte(nil), e.data...) }

type store struct {
	m    map[string]entry
	blob []byte
}

// LeakEntry returns a map entry still aliasing the store — the PR 6 bug.
func (s *store) LeakEntry(k string) entry {
	e := s.m[k]
	return e // want `returns memory aliasing receiver state`
}

// CopiedEntry breaks the alias before returning — the Cache.Get fix.
func (s *store) CopiedEntry(k string) entry {
	e := s.m[k]
	e.copyData()
	return e // ok: copyData replaced the aliased memory
}

// LeakSlice hands out the internal buffer directly.
func (s *store) LeakSlice() []byte {
	return s.blob // want `returns memory aliasing receiver state`
}

// CopySlice is the sanctioned append-copy idiom.
func (s *store) CopySlice() []byte {
	return append([]byte(nil), s.blob...) // ok: fresh backing array
}

// Count returns a scalar derived from internal state — nothing to alias.
func (s *store) Count(k string) int {
	e := s.m[k]
	return e.hits // ok: ints carry no aliasable memory
}

// StoreAliased keeps the caller's value (and its slice) — the Put bug.
func (s *store) StoreAliased(k string, e entry) {
	s.m[k] = e // want `stores a caller-provided slice-bearing value`
}

// StoreCopied deep-copies before storing — the Cache.Put fix.
func (s *store) StoreCopied(k string, e entry) {
	e.copyData()
	s.m[k] = e // ok: e's slice was replaced by a private copy
}

// StoreFresh builds the stored value from scratch.
func (s *store) StoreFresh(k string, n int) {
	s.m[k] = entry{data: make([]byte, n)} // ok: fresh memory
}

// leakUnexported is outside the discipline: unexported methods are
// internal plumbing, audited at the exported boundary that calls them.
func (s *store) leakUnexported() []byte { return s.blob } // ok: unexported

// Suppressed documents an intentional borrowed view.
func (s *store) Suppressed() []byte {
	//lint:ignore copydiscipline fixture exercises the suppression directive
	return s.blob
}
