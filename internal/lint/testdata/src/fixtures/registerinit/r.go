// Package registerinit is a dnalint fixture: compress.Register must be
// called directly from func init() with a constant lowercase name literal.
package registerinit

import "github.com/srl-nuces/ctxdna/internal/compress"

type codec struct{}

func (codec) Name() string { return "fixturecodec" }
func (codec) Compress(src []byte) ([]byte, compress.Stats, error) {
	return src, compress.Stats{}, nil
}
func (codec) Decompress(data []byte) ([]byte, compress.Stats, error) {
	return data, compress.Stats{}, nil
}

func init() {
	compress.Register("fixturecodec", func() compress.Codec { return codec{} }) // ok
}

var dynamicName = "computed"

const constName = "constcodec"

func init() {
	compress.Register(dynamicName, func() compress.Codec { return codec{} })  // want `constant string literal`
	compress.Register("Mixed-Case", func() compress.Codec { return codec{} }) // want `lowercase alphanumeric`
	compress.Register(constName, func() compress.Codec { return codec{} })    // ok: constants fold at compile time
	defer func() {
		compress.Register("deferred", func() compress.Codec { return codec{} }) // want `directly from func init`
	}()
}

func RegisterLate() {
	compress.Register("late", func() compress.Codec { return codec{} }) // want `directly from func init`
}
