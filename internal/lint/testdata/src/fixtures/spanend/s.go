// Package spanend is a dnalint fixture: spans opened with obs.Start must
// be reliably ended — deferred, unconditional in the same block, inside a
// function literal — or escape the function.
package spanend

import (
	"context"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// leaked: the span is bound but never ended on any path.
func leaked(ctx context.Context) {
	_, span := obs.Start(ctx, "fixture.leaked") // want `span span is not reliably ended`
	span.SetAttr("k", 1)
}

// discarded: the span result is dropped outright.
func discarded(ctx context.Context) {
	_, _ = obs.Start(ctx, "fixture.discarded") // want `span from obs.Start is discarded`
}

// dropped: both results thrown away in an expression statement.
func dropped(ctx context.Context) {
	obs.Start(ctx, "fixture.dropped") // want `span from obs.Start is discarded`
}

// conditional: End only runs on the error path — the happy path leaks.
func conditional(ctx context.Context, fail bool) error {
	_, span := obs.Start(ctx, "fixture.conditional") // want `span span is not reliably ended`
	if fail {
		span.End()
		return context.Canceled
	}
	return nil
}

// deferred is the canonical clean shape.
func deferred(ctx context.Context) {
	_, span := obs.Start(ctx, "fixture.deferred")
	defer span.End()
	span.SetAttr("k", 1)
}

// deferredClosure ends the span inside a deferred function literal (the
// exchange pattern, where attrs are stamped from named results first).
func deferredClosure(ctx context.Context) (err error) {
	var span *obs.Span
	ctx, span = obs.Start(ctx, "fixture.deferred_closure")
	defer func() {
		span.SetAttr("err", err != nil)
		span.End()
	}()
	return ctx.Err()
}

// sameBlock ends the span unconditionally later in the same block, with an
// additional early-path End before a return.
func sameBlock(ctx context.Context, fail bool) error {
	_, span := obs.Start(ctx, "fixture.same_block")
	if fail {
		span.End()
		return context.Canceled
	}
	span.SetAttr("k", 1)
	span.End()
	return nil
}

// closureEnd hands the End to a worker closure (the serve queue-wait
// pattern); the closure owns the span's lifecycle from then on.
func closureEnd(ctx context.Context, run func(func())) {
	_, span := obs.Start(ctx, "fixture.closure")
	run(func() {
		span.End()
	})
}

// escapesField parks the span in a struct; whoever finishes the request
// ends it.
type holder struct{ span *obs.Span }

func escapesField(ctx context.Context, h *holder) {
	_, h.span = obs.Start(ctx, "fixture.escapes_field")
}

// escapesArg passes the span along; the callee is responsible.
func escapesArg(ctx context.Context) {
	_, span := obs.Start(ctx, "fixture.escapes_arg")
	finishLater(span)
}

func finishLater(s *obs.Span) { s.End() }

// escapesReturn returns the span to the caller.
func escapesReturn(ctx context.Context) *obs.Span {
	_, span := obs.Start(ctx, "fixture.escapes_return")
	return span
}
