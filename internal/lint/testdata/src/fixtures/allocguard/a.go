// Package allocguard is a dnalint fixture for the hostile-header
// allocation discipline: make() must never be sized by a decoded header
// field that no comparison has bounded.
package allocguard

import (
	"encoding/binary"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

func unguarded(data []byte) []uint64 {
	count := binary.BigEndian.Uint64(data)
	return make([]uint64, count) // want `decoded header field with no dominating bound`
}

// guarded is the CXB1 OpenBlocks shape: the claim is compared against the
// bytes actually present before memory is committed.
func guarded(data []byte) ([]uint64, bool) {
	count := binary.BigEndian.Uint64(data)
	avail := len(data) - 8
	if avail < 0 || count > uint64(avail/12) {
		return nil, false
	}
	return make([]uint64, count), true // ok: count bounded by avail
}

// viaArithmetic proves taint follows arithmetic into the size expression.
func viaArithmetic(data []byte) []byte {
	n := binary.BigEndian.Uint32(data)
	return make([]byte, 3*int(n)+8) // want `decoded header field with no dominating bound`
}

// viaLocals proves taint follows assignment chains and uvarint decoding.
func viaLocals(data []byte) []byte {
	claim, _ := binary.Uvarint(data)
	size := claim
	return make([]byte, size) // want `decoded header field with no dominating bound`
}

// clamped uses the sanctioned helper: prealloc capped, growth by append.
func clamped(data []byte) []byte {
	claim, _ := binary.Uvarint(data)
	return make([]byte, 0, compress.HeaderPrealloc(claim)) // ok: clamped
}

// minClamped uses the builtin min bound.
func minClamped(data []byte) []byte {
	claim, _ := binary.Uvarint(data)
	return make([]byte, 0, min(int(claim), 1<<20)) // ok: min is a bound
}

// incremental grows with the work actually done: the loop condition
// comparing against the claim is the bound.
func incremental(data []byte) []byte {
	claim, _ := binary.Uvarint(data)
	var out []byte
	for uint64(len(out)) < claim {
		out = append(out, 0)
	}
	return out // ok: allocation proportional to appends
}

// lenSized proves len() of the input itself is not a header claim.
func lenSized(data []byte) []byte {
	return make([]byte, 0, len(data)) // ok: sized by bytes actually present
}

func suppressed(data []byte) []byte {
	claim, _ := binary.Uvarint(data)
	//lint:ignore allocguard fixture exercises the suppression directive
	return make([]byte, claim)
}
