// Package goroutinebound is a dnalint fixture for the bounded-pool
// goroutine discipline: every go statement must be joined through a
// WaitGroup pool, a semaphore channel, or an unconditional completion
// receive.
package goroutinebound

import "sync"

// pool is the repository's canonical worker-pool shape (RunParallel,
// BlockCompress): Add before, Done inside, Wait after.
func pool(n int, work func(int)) {
	var wg sync.WaitGroup
	tasks := make(chan int)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // ok: WaitGroup pool
			defer wg.Done()
			for i := range tasks {
				work(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
}

func fireAndForget(work func()) {
	go work() // want `outside a recognized bounded-pool shape`
}

// noJoin has Add and Done but never waits — the goroutines can outlive
// the function.
func noJoin(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want `outside a recognized bounded-pool shape`
			defer wg.Done()
			work(i)
		}(i)
	}
}

// semaphore bounds concurrency with a channel: acquire before the spawn,
// release inside.
func semaphore(n int, work func(int)) {
	sem := make(chan struct{}, 4)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) { // ok: semaphore acquire/release
			defer func() { <-sem }()
			work(i)
		}(i)
	}
}

// completionJoin sends the result from the worker and receives it
// unconditionally — a join.
func completionJoin(work func() error) error {
	done := make(chan error, 1)
	go func() { done <- work() }() // ok: unconditional receive below
	return <-done
}

// selectAbandon receives inside a select, so the other arm can abandon
// the goroutine — not a join.
func selectAbandon(work func() error, cancel chan struct{}) error {
	done := make(chan error, 1)
	go func() { done <- work() }() // want `outside a recognized bounded-pool shape`
	select {
	case err := <-done:
		return err
	case <-cancel:
		return nil
	}
}

func suppressed(serve func()) {
	//lint:ignore goroutinebound fixture: serves for the process lifetime by design
	go serve()
}
