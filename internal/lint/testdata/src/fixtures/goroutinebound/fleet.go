package goroutinebound

import "sync"

// replicaFanOut is the fleet's quorum-write shape: one goroutine per
// replica shard, all joined through a WaitGroup before the ack count is
// read. Bounded by construction — the replica set is fixed.
func replicaFanOut(replicas []func() error) int {
	var wg sync.WaitGroup
	errs := make([]error, len(replicas))
	for i, put := range replicas {
		wg.Add(1)
		go func(i int, put func() error) { // ok: WaitGroup-joined fan-out
			defer wg.Done()
			errs[i] = put()
		}(i, put)
	}
	wg.Wait()
	acks := 0
	for _, err := range errs {
		if err == nil {
			acks++
		}
	}
	return acks
}

// quorumRace abandons the slow replicas once quorum is reached: the
// select lets the timeout arm return while replica goroutines are still
// running, so they outlive their spawner unjoined.
func quorumRace(replicas []func() error, timeout chan struct{}) int {
	done := make(chan error, len(replicas))
	for _, get := range replicas {
		go func(get func() error) { // want `outside a recognized bounded-pool shape`
			done <- get()
		}(get)
	}
	acks := 0
	for range replicas {
		select {
		case err := <-done:
			if err == nil {
				acks++
			}
		case <-timeout:
			return acks
		}
	}
	return acks
}
