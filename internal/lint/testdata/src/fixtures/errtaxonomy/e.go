// Package errtaxonomy is a dnalint fixture for the corrupt-stream error
// taxonomy: fmt.Errorf reachable from Decompress must wrap with %w or go
// through compress.Corruptf.
package errtaxonomy

import (
	"fmt"

	"github.com/srl-nuces/ctxdna/internal/compress"
)

func Decompress(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("empty stream") // want `without %w or compress\.Corruptf`
	}
	if data[0] == 0xff {
		return nil, compress.Corruptf("bad magic %x", data[0]) // ok: inside the taxonomy
	}
	if err := useCorruptf(data); err != nil {
		return nil, err
	}
	payload, err := readPayload(data[1:])
	if err != nil {
		return nil, fmt.Errorf("payload: %w", err) // ok: wraps the cause
	}
	return payload, nil
}

// readPayload is reachable from Decompress, so its errors are decode-path
// errors too.
func readPayload(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("truncated payload") // want `without %w or compress\.Corruptf`
	}
	return data, nil
}

// Corruptf mirrors the compress package's taxonomy constructor: the one
// function allowed to fmt.Errorf a non-constant format on a decode path.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("corrupt: "+format, args...) // ok: the taxonomy constructor itself
}

// useCorruptf keeps the local Corruptf reachable from the Decompress root.
func useCorruptf(data []byte) error {
	if len(data) > 1<<30 {
		return Corruptf("absurd length %d", len(data))
	}
	return nil
}

func Compress(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("empty input") // ok: compress side, not a decode path
	}
	return append([]byte{0}, src...), nil
}
