// Package ctxprop is a dnalint fixture: worker fan-out must propagate the
// caller's context instead of minting a fresh root.
package ctxprop

import (
	"context"
	"sync"
)

func fanOut(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(context.Background()) // want `function literal`
		}()
	}
	wg.Wait()
}

func fanOutRight(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(ctx) // ok: captures the caller's context
		}()
	}
	wg.Wait()
}

func shadowing(ctx context.Context) error {
	ctx = context.Background() // want `already receives a ctx`
	return work(ctx)
}

func launcher() {
	ctx := context.TODO() // want `launches goroutines`
	done := make(chan struct{})
	go func() {
		work(ctx)
		close(done)
	}()
	<-done
}

// entryPoint mirrors the sequential experiment.Run wrapper: no ctx
// parameter and no fan-out, so it may legitimately mint a root context.
func entryPoint() error {
	return work(context.Background())
}

func work(ctx context.Context) error {
	return ctx.Err()
}
