// Package clockinject is a dnalint fixture: direct wall-clock reads are
// flagged; injected-clock methods and plain time-value arithmetic stay
// clean.
package clockinject

import (
	"time"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

func direct() time.Duration {
	start := time.Now()      // want `time\.Now bypasses the injected clock`
	return time.Since(start) // want `time\.Since bypasses the injected clock`
}

func injected(clock obs.Clock) time.Duration {
	start := clock.Now() // ok: method on the injected clock
	return clock.Since(start)
}

func fakeClock() time.Time {
	f := obs.NewFake(time.Unix(0, 0))
	f.Advance(time.Second) // ok: fake clocks are the test-injection path
	return f.Now()
}

func timeValuesAreFine(a, b time.Time) time.Duration {
	return b.Sub(a).Round(time.Millisecond) // ok: value methods, not clock reads
}

func deterministicConstructors() time.Time {
	return time.Unix(2015, 0) // ok: no wall-clock dependency
}
