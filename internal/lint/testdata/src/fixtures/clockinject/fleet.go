package clockinject

import (
	"time"

	"github.com/srl-nuces/ctxdna/internal/obs"
)

// breakerWallClock is the fleet anti-pattern this analyzer exists to
// catch: a circuit breaker timing its cool-down off the wall clock. Chaos
// tests cannot advance real time, so the open→half-open transition would
// be untestable and the fleet's determinism gate would race the scheduler.
type breakerWallClock struct {
	openedAt time.Time
	coolDown time.Duration
}

func (b *breakerWallClock) allow() bool {
	if b.openedAt.IsZero() {
		return true
	}
	return time.Since(b.openedAt) >= b.coolDown // want `time\.Since bypasses the injected clock`
}

func (b *breakerWallClock) trip() {
	b.openedAt = time.Now() // want `time\.Now bypasses the injected clock`
}

// breakerInjected is the sanctioned fleet shape: the breaker reads its
// clock from obs.Clock, so tests drive cool-downs with obs.Fake.Advance.
type breakerInjected struct {
	clock    obs.Clock
	openedAt time.Time
	coolDown time.Duration
}

func (b *breakerInjected) allow() bool {
	if b.openedAt.IsZero() {
		return true
	}
	return b.clock.Since(b.openedAt) >= b.coolDown // ok: injected clock method
}

func (b *breakerInjected) trip() {
	b.openedAt = b.clock.Now() // ok: injected clock method
}
