// Package ignore is a dnalint fixture for the //lint:ignore directive.
// Only the reasonless directive at the bottom leaves its finding alive.
package ignore

import "time"

func trailing() time.Time {
	return time.Now() //lint:ignore determinism trailing-comment placement
}

func above() time.Time {
	//lint:ignore determinism directive-above placement
	return time.Now()
}

func allForm() time.Time {
	//lint:ignore all blanket suppression
	return time.Now()
}

func listForm() time.Time {
	//lint:ignore ctxprop,determinism comma-separated analyzer list
	return time.Now()
}

func reasonless() time.Time {
	//lint:ignore determinism
	return time.Now()
}
