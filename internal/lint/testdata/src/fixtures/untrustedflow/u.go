// Package untrustedflow is a dnalint fixture for the untrusted-byte taint
// analysis: bytes from a cloud store, a file read or a []byte parameter
// must reach codecs only through the hardened compress.Safe* layer.
package untrustedflow

import (
	"os"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/compress"
)

// rawCodec stands in for any registered codec's raw decode entry point.
type rawCodec struct{}

func (rawCodec) Decompress(data []byte) ([]byte, error) { return data, nil }

func rawFromStore(store cloud.Store) ([]byte, error) {
	blob, err := store.Get("c", "b")
	if err != nil {
		return nil, err
	}
	var c rawCodec
	return c.Decompress(blob) // want `untrusted bytes reach a raw Decompress`
}

func safeFromStore(store cloud.Store) ([]byte, error) {
	blob, err := store.Get("c", "b")
	if err != nil {
		return nil, err
	}
	out, _, err := compress.SafeDecompress("", blob, compress.Limits{}) // ok: hardened path
	return out, err
}

// reassembled proves taint survives append-reassembly and loops — the
// ExchangeBlocks download shape.
func reassembled(store cloud.Store) ([]byte, error) {
	var all []byte
	for i := 0; i < 3; i++ {
		piece, err := store.Get("c", "b")
		if err != nil {
			return nil, err
		}
		all = append(all, piece...)
	}
	var c rawCodec
	return c.Decompress(all) // want `untrusted bytes reach a raw Decompress`
}

// fromFile proves os.ReadFile results are untrusted.
func fromFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c rawCodec
	return c.Decompress(raw) // want `untrusted bytes reach a raw Decompress`
}

// fromParam proves []byte parameters are untrusted at function entry.
func fromParam(payload []byte) ([]byte, error) {
	var c rawCodec
	return c.Decompress(payload) // want `untrusted bytes reach a raw Decompress`
}

// laundered proves a reassignment kill: bytes replaced by a sanitized
// result stop being tainted.
func laundered(store cloud.Store) ([]byte, error) {
	blob, err := store.Get("c", "b")
	if err != nil {
		return nil, err
	}
	blob, _, err = compress.SafeDecompressAny("", blob, compress.Limits{})
	if err != nil {
		return nil, err
	}
	var c rawCodec
	return c.Decompress(blob) // ok: blob was rebound to the sanitized output
}

// hostileSize proves the make-sizing sink: a length pulled out of
// untrusted bytes must be bounded before it sizes an allocation.
func hostileSize(store cloud.Store) []byte {
	blob, _ := store.Get("c", "b")
	n := int(blob[0])
	return make([]byte, n) // want `sized by untrusted input`
}

func boundedSize(store cloud.Store) []byte {
	blob, _ := store.Get("c", "b")
	n := int(blob[0])
	if n > 64 {
		n = 64
	}
	return make([]byte, n) // ok: n was compared against a bound
}

func suppressed(store cloud.Store) ([]byte, error) {
	blob, _ := store.Get("c", "b")
	var c rawCodec
	//lint:ignore untrustedflow fixture exercises the suppression directive
	return c.Decompress(blob)
}
