package lint

import (
	"go/ast"
	"go/types"
)

// CtxProp guards the parallel pipeline's cancellation contract: the first
// failing run cancels every worker and RunParallel joins them all before
// returning. A context.Background() inside the fan-out detaches workers
// from that chain, so cancellation silently stops propagating.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: `flags context.Background()/context.TODO() inside function
literals, inside functions that already take a context.Context, and inside
functions that launch goroutines — the places where a fresh root context
severs the caller's cancellation chain. Top-level entry points without a
ctx parameter (e.g. the sequential Run wrapper) stay free to mint one.
Scope: internal/experiment.`,
	Scope: scopeUnder("internal/experiment"),
	Run:   runCtxProp,
}

func runCtxProp(pass *Pass) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			hasCtx := hasContextParam(pass.Info, fd)
			launches := containsGoStmt(fd.Body)
			inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() != "Background" && fn.Name() != "TODO" {
					return true
				}
				_, inLiteral := enclosingFunc(stack).(*ast.FuncLit)
				switch {
				case inLiteral:
					pass.Reportf(call.Pos(), "context.%s inside a function literal detaches it from the caller's cancellation; capture the surrounding ctx instead", fn.Name())
				case hasCtx:
					pass.Reportf(call.Pos(), "context.%s in a function that already receives a ctx parameter; propagate the caller's context", fn.Name())
				case launches:
					pass.Reportf(call.Pos(), "context.%s in a function that launches goroutines; accept a ctx parameter so callers can cancel the fan-out", fn.Name())
				}
				return true
			})
		}
	}
}

func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func containsGoStmt(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
