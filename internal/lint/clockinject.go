package lint

import (
	"go/ast"
	"go/types"
)

// ClockInject enforces the observability layer's injectable-clock
// convention: measurement-path packages never read the wall clock directly.
// Real time enters through an obs.Clock — obs.System() wired in by the
// CLIs, obs.NewFake driven by tests — so span durations and progress output
// are reproducible and the deterministic grids stay modeled-time-only.
// The fleet's circuit breakers depend on this invariant hardest: their
// open→half-open cool-downs run on the injected clock so chaos tests can
// advance time deterministically instead of sleeping. Determinism flags
// the same calls for its own reason (output reproducibility); this
// analyzer names the sanctioned replacement.
var ClockInject = &Analyzer{
	Name: "clockinject",
	Doc: `flags direct time.Now / time.Since calls in packages that must take
their clock from obs.Clock (obs.System in CLIs, obs.NewFake in tests).
Methods on an injected clock are the sanctioned path and stay clean; the
fleet's breaker cool-downs are the canonical dependent. Scope:
internal/compress/..., internal/cloud, internal/experiment,
internal/serve (non-test files).`,
	Scope: scopeUnder("internal/compress", "internal/cloud", "internal/experiment", "internal/serve"),
	Run:   runClockInject,
}

func runClockInject(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // t.Sub(u), d.Round(...): values, not clock reads
			}
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(call.Pos(), "time.%s bypasses the injected clock; accept an obs.Clock (obs.System in CLIs, obs.NewFake in tests) and call its methods instead", fn.Name())
			}
			return true
		})
	}
}
