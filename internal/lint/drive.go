package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LintModule locates the module containing dir, loads every package
// matched by the go-style patterns (default "./...") and runs the full
// analyzer suite. Patterns are resolved relative to dir.
func LintModule(dir string, patterns []string) ([]Diagnostic, error) {
	res, err := LintModuleAudit(dir, patterns)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// AuditResult is a full-suite run's findings plus every //lint:ignore
// directive seen, with usage marks — LintModuleAudit's output.
type AuditResult struct {
	Diags   []Diagnostic
	Ignores []*IgnoreDirective
}

// Stale returns the directives that suppressed nothing: either malformed
// (missing the mandatory reason) or covering a line where no named
// analyzer reports anymore. A stale directive is a lie about the code
// below it — `dnalint -ignores` fails on them.
func (r AuditResult) Stale() []*IgnoreDirective {
	var out []*IgnoreDirective
	for _, d := range r.Ignores {
		if !d.Used() {
			out = append(out, d)
		}
	}
	return out
}

// LintModuleAudit is LintModule keeping the suppression directives. The
// directives are sorted by position; their Used marks are only meaningful
// when the run covered every package the directives' analyzers scope to,
// so callers auditing ignores should lint the whole module ("./...").
func LintModuleAudit(dir string, patterns []string) (AuditResult, error) {
	moduleDir, err := FindModuleRoot(dir)
	if err != nil {
		return AuditResult{}, err
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return AuditResult{}, err
	}
	all, err := loader.ModulePackages()
	if err != nil {
		return AuditResult{}, err
	}
	paths, err := matchPatterns(loader, dir, all, patterns)
	if err != nil {
		return AuditResult{}, err
	}
	var res AuditResult
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return AuditResult{}, err
		}
		diags, ignores := RunPackageIgnores(pkg, All())
		res.Diags = append(res.Diags, diags...)
		res.Ignores = append(res.Ignores, ignores...)
	}
	SortDiagnostics(res.Diags)
	sort.Slice(res.Ignores, func(i, j int) bool {
		a, b := res.Ignores[i], res.Ignores[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return res, nil
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// matchPatterns filters the module's package paths by go-style patterns:
// "./...", "<dir>/...", or a plain package directory.
func matchPatterns(l *Loader, dir string, all, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		abs, err := filepath.Abs(filepath.Join(dir, pat))
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(l.ModuleDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: pattern %q escapes module %s", pat, l.ModuleDir)
		}
		want := l.ModulePath
		if rel != "." {
			want = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		matched := false
		for _, p := range all {
			if p == want || (recursive && strings.HasPrefix(p, want+"/")) || (recursive && want == l.ModulePath) {
				keep[p] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	var out []string
	for _, p := range all {
		if keep[p] {
			out = append(out, p)
		}
	}
	return out, nil
}
