package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the suite's dataflow layer: a small flow-sensitive,
// intraprocedural taint interpreter over the type-checked AST. The
// per-statement analyzers (determinism, statsadd, ...) ask "does this call
// site have the right shape"; the dataflow analyzers (untrustedflow,
// allocguard, copydiscipline) ask "can a value from THERE reach HERE" —
// which survives refactors that merely move the value through locals,
// appends, slices and branches.
//
// The interpreter is an abstract execution of one function body. The
// abstract state maps variables (types.Object) to a single taint bit.
// Statements are walked in source order; branches fork the state and merge
// by union; loops iterate their bodies to a fixpoint (the merge is
// monotone, so it terminates); assignment of a clean value kills the
// target's taint (the reassignment-kill the per-statement checkers cannot
// express). Function literals are interpreted inline at their occurrence —
// the worker-pool closures this repository builds its fan-outs from write
// into captured slices, and those writes must propagate.
//
// The design trades soundness for usefulness in the usual linter
// direction: weak updates through slices/fields never kill, guard
// comparisons kill even when the comparison does not dominate every path,
// and calls are not followed across function boundaries. The fixtures
// under testdata/src/fixtures pin the behavior analyzers rely on.

// State is the abstract store of one taint interpretation: the set of
// variables currently holding tainted values.
type State map[types.Object]bool

func (s State) clone() State {
	c := make(State, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// mergeFrom unions o into s, reporting whether s grew — the loop-fixpoint
// termination test.
func (s State) mergeFrom(o State) bool {
	grew := false
	for k := range o {
		if !s[k] {
			s[k] = true
			grew = true
		}
	}
	return grew
}

// setTo replaces s's contents with o, in place (callers share the map).
func (s State) setTo(o State) {
	for k := range s {
		if !o[k] {
			delete(s, k)
		}
	}
	for k := range o {
		s[k] = true
	}
}

// FlowConfig parameterizes one taint interpretation.
type FlowConfig struct {
	Info *types.Info

	// SourceCall reports calls whose results are tainted (untrusted reads,
	// decoded header fields).
	SourceCall func(*ast.CallExpr) bool
	// SourceExpr reports non-call expressions that originate taint — e.g. a
	// selector on the receiver for aliasing analyses. Checked on every
	// identifier, selector and index expression.
	SourceExpr func(ast.Expr) bool
	// Sanitizer reports calls whose results are clean regardless of
	// arguments (SafeDecompress, HeaderPrealloc, ...).
	Sanitizer func(*ast.CallExpr) bool
	// Seed installs the initial taint (e.g. parameters) before the body runs.
	Seed func(State)

	// PropagateCalls taints the results of unclassified calls when any
	// argument (or the method receiver) is tainted. Content analyses
	// (untrustedflow) want this on; alias analyses (copydiscipline) want it
	// off — a callee's result is presumed fresh memory.
	PropagateCalls bool
	// AppendAliasOnly makes append's result carry only the first argument's
	// taint (append([]T(nil), src...) is the sanctioned copy idiom and
	// shares no memory with src). Off, append propagates any argument —
	// the content view.
	AppendAliasOnly bool
	// GuardComparisons kills the taint of every variable that appears in an
	// order comparison (<, <=, >, >=) — the "dominating bound check"
	// convention: a value the code compared against a limit is treated as
	// bounded from there on.
	GuardComparisons bool
	// KillOnCall clears a variable's taint when it is the receiver of a
	// method call or passed by address — the copy-in-place idiom
	// (r.copySlices(), normalize(&rows)).
	KillOnCall bool
	// TaintableType, when set, restricts taint to expressions whose static
	// type satisfies it. Alias analyses set this to containsSliceType: a
	// float64 read out of a tainted struct is a copy of a number and
	// cannot alias the struct's memory.
	TaintableType func(types.Type) bool

	// At is invoked for every statement and expression node in abstract
	// execution order with a query into the state at that point. Analyzers
	// check their sinks here.
	At func(n ast.Node, tainted func(ast.Expr) bool)
}

// maxLoopIterations bounds the loop fixpoint; union-merging makes the
// state grow monotonically, so real convergence is fast and the bound is a
// backstop.
const maxLoopIterations = 8

// RunTaintFlow interprets one function body under cfg.
func RunTaintFlow(body *ast.BlockStmt, cfg FlowConfig) {
	if body == nil {
		return
	}
	tf := &taintFlow{cfg: cfg}
	st := State{}
	if cfg.Seed != nil {
		cfg.Seed(st)
	}
	tf.block(body, st)
}

type taintFlow struct {
	cfg FlowConfig
}

func (tf *taintFlow) at(n ast.Node, st State) {
	if tf.cfg.At != nil {
		tf.cfg.At(n, func(e ast.Expr) bool { return tf.tainted(st, e) })
	}
}

func (tf *taintFlow) block(b *ast.BlockStmt, st State) {
	for _, s := range b.List {
		tf.stmt(s, st)
	}
}

func (tf *taintFlow) stmt(s ast.Stmt, st State) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		tf.block(s, st)
	case *ast.ExprStmt:
		tf.scan(s.X, st)
	case *ast.AssignStmt:
		tf.at(s, st)
		for _, r := range s.Rhs {
			tf.scan(r, st)
		}
		for _, l := range s.Lhs {
			tf.scan(l, st)
		}
		tf.assign(s, st)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				tf.scan(v, st)
			}
			tf.assignSpec(vs, st)
		}
	case *ast.ReturnStmt:
		tf.at(s, st)
		for _, r := range s.Results {
			tf.scan(r, st)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			tf.stmt(s.Init, st)
		}
		tf.scan(s.Cond, st)
		if tf.cfg.GuardComparisons {
			tf.applyGuards(s.Cond, st)
		}
		thenSt := st.clone()
		tf.block(s.Body, thenSt)
		if s.Else != nil {
			elseSt := st.clone()
			tf.stmt(s.Else, elseSt)
			thenSt.mergeFrom(elseSt)
			st.setTo(thenSt)
		} else {
			st.mergeFrom(thenSt)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			tf.stmt(s.Init, st)
		}
		for i := 0; i < maxLoopIterations; i++ {
			if s.Cond != nil {
				tf.scan(s.Cond, st)
				if tf.cfg.GuardComparisons {
					tf.applyGuards(s.Cond, st)
				}
			}
			body := st.clone()
			tf.block(s.Body, body)
			if s.Post != nil {
				tf.stmt(s.Post, body)
			}
			if !st.mergeFrom(body) {
				break
			}
		}
	case *ast.RangeStmt:
		tf.scan(s.X, st)
		for i := 0; i < maxLoopIterations; i++ {
			t := tf.tainted(st, s.X)
			if s.Key != nil {
				tf.setObj(s.Key, false, st) // keys are indices, not content
			}
			if s.Value != nil {
				tf.setObj(s.Value, t, st)
			}
			body := st.clone()
			tf.block(s.Body, body)
			if !st.mergeFrom(body) {
				break
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			tf.stmt(s.Init, st)
		}
		if s.Tag != nil {
			tf.scan(s.Tag, st)
		}
		tf.branches(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			tf.stmt(s.Init, st)
		}
		tf.stmt(s.Assign, st)
		tf.branches(s.Body, st)
	case *ast.SelectStmt:
		tf.branches(s.Body, st)
	case *ast.GoStmt:
		tf.at(s, st)
		tf.scan(s.Call, st)
	case *ast.DeferStmt:
		tf.scan(s.Call, st)
	case *ast.SendStmt:
		tf.scan(s.Chan, st)
		tf.scan(s.Value, st)
	case *ast.IncDecStmt:
		tf.scan(s.X, st)
	case *ast.LabeledStmt:
		tf.stmt(s.Stmt, st)
	}
}

// branches interprets each clause of a switch/select body from a copy of
// the incoming state and merges the exits.
func (tf *taintFlow) branches(body *ast.BlockStmt, st State) {
	merged := st.clone()
	for _, clause := range body.List {
		sub := st.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				tf.scan(e, sub)
			}
			for _, s := range c.Body {
				tf.stmt(s, sub)
			}
		case *ast.CommClause:
			if c.Comm != nil {
				tf.stmt(c.Comm, sub)
			}
			for _, s := range c.Body {
				tf.stmt(s, sub)
			}
		}
		merged.mergeFrom(sub)
	}
	st.setTo(merged)
}

// scan walks one expression in evaluation context: it fires the At
// callback for every node, interprets function-literal bodies inline, and
// applies the KillOnCall convention.
func (tf *taintFlow) scan(e ast.Expr, st State) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			tf.at(n, st)
			tf.block(lit.Body, st)
			return false
		}
		tf.at(n, st)
		if call, ok := n.(*ast.CallExpr); ok && tf.cfg.KillOnCall {
			tf.killOnCall(call, st)
		}
		return true
	})
}

// killOnCall clears the taint of a method call's receiver variable and of
// any variable passed by address — the callee is presumed to have replaced
// the aliased memory with private copies.
func (tf *taintFlow) killOnCall(call *ast.CallExpr, st State) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := tf.cfg.Info.Types[call.Fun]; !ok || !tv.IsType() { // not a conversion
			if obj := rootObject(tf.cfg.Info, sel.X); obj != nil {
				delete(st, obj)
			}
		}
	}
	for _, arg := range call.Args {
		if u, ok := unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if obj := rootObject(tf.cfg.Info, u.X); obj != nil {
				delete(st, obj)
			}
		}
	}
}

// assign applies an assignment's transfer function.
func (tf *taintFlow) assign(s *ast.AssignStmt, st State) {
	if len(s.Lhs) == len(s.Rhs) {
		// Evaluate all RHS taints against the pre-state first, so swaps
		// (a, b = b, a) transfer correctly.
		taints := make([]bool, len(s.Rhs))
		for i, r := range s.Rhs {
			taints[i] = tf.tainted(st, r)
		}
		for i, l := range s.Lhs {
			t := taints[i]
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				t = t || tf.tainted(st, l) // op-assign accumulates
			}
			tf.setObj(l, t, st)
		}
		return
	}
	// Tuple assignment from one multi-result expression: every target
	// carries the expression's taint.
	if len(s.Rhs) == 1 {
		t := tf.tainted(st, s.Rhs[0])
		for _, l := range s.Lhs {
			tf.setObj(l, t, st)
		}
	}
}

func (tf *taintFlow) assignSpec(vs *ast.ValueSpec, st State) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		t := tf.tainted(st, vs.Values[0])
		for _, name := range vs.Names {
			tf.setObj(name, t, st)
		}
		return
	}
	for i, name := range vs.Names {
		t := false
		if i < len(vs.Values) {
			t = tf.tainted(st, vs.Values[i])
		}
		tf.setObj(name, t, st)
	}
}

// setObj writes taint through an assignment target. A direct identifier
// gets a strong update (clean RHS kills); writes through an index, field
// or dereference are weak — they can only add taint to the root variable,
// since other elements keep their old contents.
func (tf *taintFlow) setObj(lhs ast.Expr, t bool, st State) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := identObject(tf.cfg.Info, lhs)
		if obj == nil {
			return
		}
		if t {
			st[obj] = true
		} else {
			delete(st, obj)
		}
	default:
		if !t {
			return
		}
		if obj := rootObject(tf.cfg.Info, lhs); obj != nil {
			st[obj] = true
		}
	}
}

// tainted evaluates an expression's taint in st.
func (tf *taintFlow) tainted(st State, e ast.Expr) bool {
	return tf.taintedRaw(st, e) && tf.typeOK(e)
}

// typeOK applies the TaintableType gate to e's static type.
func (tf *taintFlow) typeOK(e ast.Expr) bool {
	if tf.cfg.TaintableType == nil {
		return true
	}
	var t types.Type
	if id, ok := unparen(e).(*ast.Ident); ok {
		if obj := identObject(tf.cfg.Info, id); obj != nil {
			t = obj.Type()
		}
	} else if tv, ok := tf.cfg.Info.Types[unparen(e)]; ok {
		t = tv.Type
	}
	if t == nil {
		return true // unknown type: stay conservative, keep the taint
	}
	// A comma-ok or multi-result expression (r, ok := c.m[key]) carries a
	// tuple type; the taint belongs to whichever component can hold it.
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if tf.cfg.TaintableType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return tf.cfg.TaintableType(t)
}

func (tf *taintFlow) taintedRaw(st State, e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = unparen(e)
	if tf.cfg.SourceExpr != nil {
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			if tf.cfg.SourceExpr(e) {
				return true
			}
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := identObject(tf.cfg.Info, e)
		return obj != nil && st[obj]
	case *ast.SelectorExpr:
		if sel, ok := tf.cfg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return tf.tainted(st, e.X) // a field of a tainted value is tainted
		}
		// Qualified identifier (pkg.Var) or method value: not tracked.
		return false
	case *ast.IndexExpr:
		return tf.tainted(st, e.X)
	case *ast.IndexListExpr:
		return tf.tainted(st, e.X)
	case *ast.SliceExpr:
		return tf.tainted(st, e.X)
	case *ast.StarExpr:
		return tf.tainted(st, e.X)
	case *ast.UnaryExpr:
		return tf.tainted(st, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
			return false // booleans carry no content
		}
		return tf.tainted(st, e.X) || tf.tainted(st, e.Y)
	case *ast.CallExpr:
		return tf.callTainted(st, e)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tf.tainted(st, el) {
				return true
			}
		}
		return false
	case *ast.TypeAssertExpr:
		return tf.tainted(st, e.X)
	}
	return false
}

func (tf *taintFlow) callTainted(st State, call *ast.CallExpr) bool {
	// Conversions pass their operand's taint through: int(n) is still n.
	if tv, ok := tf.cfg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return tf.tainted(st, call.Args[0])
		}
		return false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := tf.cfg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if tf.cfg.AppendAliasOnly {
					// append's result may alias only its first argument;
					// append([]T(nil), src...) is the sanctioned copy.
					return len(call.Args) > 0 && tf.tainted(st, call.Args[0])
				}
				for _, a := range call.Args {
					if tf.tainted(st, a) {
						return true
					}
				}
				return false
			case "min":
				// min(claim, cap) is a bound: the result is no larger than
				// the clean operand.
				return false
			case "max":
				for _, a := range call.Args {
					if tf.tainted(st, a) {
						return true
					}
				}
				return false
			case "len", "cap", "make", "new", "copy":
				// len/cap measure what is actually present; make/new return
				// fresh memory.
				return false
			}
			return false
		}
	}
	if tf.cfg.Sanitizer != nil && tf.cfg.Sanitizer(call) {
		return false
	}
	if tf.cfg.SourceCall != nil && tf.cfg.SourceCall(call) {
		return true
	}
	if tf.cfg.PropagateCalls {
		for _, a := range call.Args {
			if tf.tainted(st, a) {
				return true
			}
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return tf.tainted(st, sel.X)
		}
	}
	return false
}

// applyGuards kills the taint of every variable referenced inside an
// order comparison in cond — the bound-check convention.
func (tf *taintFlow) applyGuards(cond ast.Expr, st State) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := identObject(tf.cfg.Info, id); obj != nil {
							delete(st, obj)
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// identObject resolves an identifier to its variable object.
func identObject(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// rootObject walks an lvalue-shaped expression (s.f[i].g, *p, ...) down to
// the variable at its root.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return identObject(info, x)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				e = x.X
				continue
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// containsSliceType reports whether values of t carry aliasable mutable
// memory: a slice or map anywhere in the value's own layout. Pointers do
// not count — handing out a pointer is an explicit sharing decision, not
// the accidental aliasing this check hunts.
func containsSliceType(t types.Type) bool {
	return containsSlice(t, map[types.Type]bool{})
}

func containsSlice(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	case *types.Array:
		return containsSlice(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSlice(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
