package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// runSnippet type-checks a source snippet, runs the taint interpreter over
// the function named f, and returns the taint observed at each sink(x)
// call in flow order. src() calls are sources; clean(...) is a sanitizer.
func runSnippet(t *testing.T, source string, mutate func(*FlowConfig)) []bool {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", source, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("snippet", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("snippet has no func f")
	}

	var observed []bool
	isNamedCall := func(call *ast.CallExpr, name string) bool {
		id, ok := unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == name
	}
	cfg := FlowConfig{
		Info:             info,
		PropagateCalls:   true,
		GuardComparisons: true,
		SourceCall:       func(call *ast.CallExpr) bool { return isNamedCall(call, "src") },
		Sanitizer:        func(call *ast.CallExpr) bool { return isNamedCall(call, "clean") },
		At: func(n ast.Node, tainted func(ast.Expr) bool) {
			if call, ok := n.(*ast.CallExpr); ok && isNamedCall(call, "sink") && len(call.Args) > 0 {
				observed = append(observed, tainted(call.Args[0]))
			}
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	RunTaintFlow(fn.Body, cfg)
	return observed
}

// The declarations every snippet shares.
const snippetPrelude = `package snippet

func src() []byte            { return nil }
func clean(b []byte) []byte  { return b }
func sink(b []byte)          {}
func fresh() []byte          { return nil }

type box struct{ data []byte }

func (b *box) scrub() {}
`

func TestTaintFlowTable(t *testing.T) {
	cases := []struct {
		name   string
		body   string
		mutate func(*FlowConfig)
		want   []bool
	}{
		{
			name: "straight line propagation",
			body: `func f() { x := src(); y := x; sink(y) }`,
			want: []bool{true},
		},
		{
			name: "sanitizer clears",
			body: `func f() { x := src(); x = clean(x); sink(x) }`,
			want: []bool{false},
		},
		{
			name: "reassignment kills",
			body: `func f() { x := src(); sink(x); x = fresh(); sink(x) }`,
			want: []bool{true, false},
		},
		{
			name: "branch taint survives the merge",
			body: `func f(c bool) { x := fresh(); if c { x = src() }; sink(x) }`,
			want: []bool{true},
		},
		{
			name: "kill on one branch does not clear the other",
			body: `func f(c bool) { x := src(); if c { x = fresh() }; sink(x) }`,
			want: []bool{true},
		},
		{
			name: "kill on both branches clears",
			body: `func f(c bool) { x := src(); if c { x = fresh() } else { x = clean(x) }; sink(x) }`,
			want: []bool{false},
		},
		{
			name: "loop carries taint into the next iteration",
			body: `func f() { var a []byte; for i := 0; i < 2; i++ { sink(a); a = append(a, src()...) } }`,
			// First interpretation sees a clean, the fixpoint iteration sees
			// the taint flowing around the back edge, then the state is stable.
			want: []bool{false, true},
		},
		{
			name: "range value inherits the range operand's taint",
			body: `func f() { xs := [][]byte{src()}; for _, v := range xs { sink(v) } }`,
			want: []bool{true},
		},
		{
			name: "swap transfers taint with pre-state rhs",
			body: `func f() { a, b := src(), fresh(); a, b = b, a; sink(a); sink(b) }`,
			want: []bool{false, true},
		},
		{
			name: "tuple assignment taints all targets",
			body: `func f() { m := map[int][]byte{0: src()}; v, ok := m[0]; _ = ok; sink(v) }`,
			want: []bool{true},
		},
		{
			name: "guard comparison kills",
			body: `func f() { x := src(); if len(x) > 8 { return }; sink(x) }`,
			// len(x) > 8 names x inside an order comparison: bounded.
			want: []bool{false},
		},
		{
			name: "slice and index stay tainted",
			body: `func f() { x := src(); sink(x[1:]); y := [][]byte{x}; sink(y[0]) }`,
			want: []bool{true, true},
		},
		{
			name: "weak update through an index taints the root",
			body: `func f() { xs := make([][]byte, 1); xs[0] = src(); sink(xs[0]) }`,
			want: []bool{true},
		},
		{
			name: "function literal interpreted inline",
			body: `func f() { var x []byte; g := func() { x = src() }; g(); sink(x) }`,
			// The literal's body runs where it appears; the capture write is
			// visible (conservatively, regardless of whether g is invoked).
			want: []bool{true},
		},
		{
			name: "append any-arg mode taints the result",
			body: `func f() { a := fresh(); a = append(a, src()...); sink(a) }`,
			want: []bool{true},
		},
		{
			name: "append alias-only mode follows just the first arg",
			body: `func f() { a := append([]byte(nil), src()...); sink(a) }`,
			mutate: func(cfg *FlowConfig) {
				cfg.AppendAliasOnly = true
			},
			want: []bool{false},
		},
		{
			name: "kill on method call (copy-in-place idiom)",
			body: `func f() { b := box{data: src()}; sink(b.data); b.scrub(); sink(b.data) }`,
			mutate: func(cfg *FlowConfig) {
				cfg.KillOnCall = true
			},
			want: []bool{true, false},
		},
		{
			name: "min builtin is a bound",
			body: `func f() { x := src(); n := min(len(x), 8); _ = n; sink(x[:0]) }`,
			// x itself was guarded by nothing, but this pins that min/len
			// results never become tainted (the capped-prealloc idiom).
			want: []bool{true},
		},
		{
			name: "switch branches merge by union",
			body: `func f(k int) { x := fresh(); switch k { case 0: x = src(); case 1: x = fresh() }; sink(x) }`,
			want: []bool{true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runSnippet(t, snippetPrelude+tc.body+"\n", tc.mutate)
			if len(got) != len(tc.want) {
				t.Fatalf("observed %d sink visits %v, want %d %v", len(got), got, len(tc.want), tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("sink visit %d: tainted=%v, want %v (all: %v)", i, got[i], tc.want[i], tc.want)
				}
			}
		})
	}
}

// TestIgnoreUsageTracking pins the audit contract: a directive that
// suppressed a finding reports Used, one that matched nothing does not,
// and a reasonless directive is Malformed and inert.
func TestIgnoreUsageTracking(t *testing.T) {
	pkg, err := fixtureLoader(t).Load("fixtures/ignore")
	if err != nil {
		t.Fatal(err)
	}
	// Run the analyzer directly (as runForTest does) so the fixture path
	// doesn't have to satisfy Determinism's module scope, but keep the
	// ignore index so used-marking is observable.
	var diags []Diagnostic
	idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
	Determinism.Run(&Pass{
		Analyzer: Determinism,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		diags:    &diags,
		ignores:  idx,
	})
	ignores := idx.list
	if len(ignores) != 5 {
		t.Fatalf("got %d directives, want 5: %v", len(ignores), ignores)
	}
	byReason := map[string]*IgnoreDirective{}
	for _, d := range ignores {
		byReason[d.Reason] = d
	}
	for _, reason := range []string{"trailing-comment placement", "directive-above placement", "blanket suppression", "comma-separated analyzer list"} {
		d := byReason[reason]
		if d == nil {
			t.Fatalf("directive with reason %q not found", reason)
		}
		if !d.Used() {
			t.Errorf("directive %q should be marked used", reason)
		}
	}
	if d := byReason[""]; d == nil || !d.Malformed() || d.Used() {
		t.Errorf("reasonless directive should be malformed and unused, got %+v", d)
	}
}
