package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package bundles one type-checked package for the analyzers.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages from source with no toolchain invocation and
// no dependencies outside the standard library. Import paths resolve in
// order: the module itself, FixtureRoot (test fixtures), then GOROOT
// (including GOROOT/src/vendor). The repository has no external module
// dependencies, so this covers every reachable import.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string
	// FixtureRoot, when set, resolves import paths that are neither module
	// nor stdlib — the analyzers' testdata packages.
	FixtureRoot string

	ctxt    build.Context
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory, reading the
// module path from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	// The repository is pure Go; disabling cgo keeps the stdlib closure on
	// its portable no-cgo variants so source type-checking needs no C.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:       token.NewFileSet(),
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		ctxt:       ctxt,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// dirOf resolves an import path to a directory.
func (l *Loader) dirOf(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	goroot := l.ctxt.GOROOT
	for _, base := range []string{"src", filepath.Join("src", "vendor")} {
		dir := filepath.Join(goroot, base, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("lint: cannot resolve import %q", path)
}

// Load type-checks the package at the import path, loading its whole
// dependency closure from source on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.dirOf(path)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if p == "unsafe" {
				return types.Unsafe, nil
			}
			dep, err := l.Load(p)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}),
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModulePackages returns the import paths of every buildable non-test
// package in the module, sorted: the `./...` universe dnalint analyzes.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		hasGo, err := hasNonTestGoFiles(p)
		if err != nil {
			return err
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func hasNonTestGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// LoadForVet type-checks a single package from an explicit file list using
// a caller-supplied importer — the `go vet -vettool` unit-checking path,
// where dependency types come from the compiler's export data rather than
// from source.
func LoadForVet(fset *token.FileSet, path string, goFiles []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// NewVetImporter builds the importer for LoadForVet from the vet config's
// import map and export-data file table.
func NewVetImporter(fset *token.FileSet, compiler string, importMap, packageFile map[string]string) types.Importer {
	compImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := importMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		from, ok := compImp.(types.ImporterFrom)
		if !ok {
			return compImp.Import(path)
		}
		return from.ImportFrom(path, "", 0)
	})
}
