package lint

import (
	"go/ast"
	"go/types"
)

// UntrustedFlow tracks bytes from untrusted origins — blob-store
// downloads, files read off the command line, byte-slice parameters of
// exchange entry points — and demands they reach a codec only through the
// hardened decode layer. PR 4 routed every decode through
// SafeDecompress/Open; this analyzer is what keeps a later refactor from
// quietly rerouting a downloaded payload into a raw Decompress or into an
// allocation sized by attacker bytes.
var UntrustedFlow = &Analyzer{
	Name: "untrustedflow",
	Doc: `taint-tracks untrusted bytes (cloud.Store Get/Download results,
os.ReadFile/io.ReadAll input, []byte parameters) through assignments,
appends, slices and branches, and flags flows into a raw Decompress call
or into make() sizing without an intervening bound check. Sanctioned
sinks: compress.SafeDecompress, SafeDecompressAny, Open, OpenBlocks,
OpenBlocksObserved. Scope: internal/cloud, internal/serve and cmd/.`,
	Scope: scopeUnder("internal/cloud", "internal/serve", "cmd"),
	Run:   runUntrustedFlow,
}

// untrustedSanitizers are the hardened entry points of internal/compress:
// bytes that pass through them have been length-limited, checksummed and
// panic-contained, and their results are trusted.
var untrustedSanitizers = map[string]bool{
	"SafeDecompress":     true,
	"SafeDecompressAny":  true,
	"Open":               true,
	"OpenBlocks":         true,
	"OpenBlocksObserved": true,
}

func runUntrustedFlow(pass *Pass) {
	cloudPath := ModulePath + "/internal/cloud"
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			RunTaintFlow(fd.Body, FlowConfig{
				Info: pass.Info,
				Seed: func(st State) {
					// Byte-slice parameters are untrusted: the exchange and
					// CLI layers hand raw payloads around as []byte and the
					// caller's provenance is invisible intraprocedurally.
					seedByteParams(pass.Info, fd, st)
				},
				SourceCall: func(call *ast.CallExpr) bool {
					fn := calleeFunc(pass.Info, call)
					if fn == nil {
						return false
					}
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						// Store.Get / Store.Download on any internal/cloud
						// type (interface or concrete) returns remote bytes.
						if fn.Pkg() != nil && fn.Pkg().Path() == cloudPath &&
							(fn.Name() == "Get" || fn.Name() == "Download") {
							return true
						}
						return false
					}
					return isPkgFunc(fn, "os", "ReadFile") || isPkgFunc(fn, "io", "ReadAll")
				},
				Sanitizer: func(call *ast.CallExpr) bool {
					fn := calleeFunc(pass.Info, call)
					return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == CompressPath &&
						untrustedSanitizers[fn.Name()]
				},
				PropagateCalls:   true,
				GuardComparisons: true,
				At: func(n ast.Node, tainted func(ast.Expr) bool) {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return
					}
					if fn := calleeFunc(pass.Info, call); fn != nil && fn.Name() == "Decompress" {
						for _, arg := range call.Args {
							if tainted(arg) {
								pass.Reportf(call.Pos(), "untrusted bytes reach a raw Decompress; decode through compress.SafeDecompress/SafeDecompressAny (or OpenBlocks for CXB1 containers) so size limits, codec pinning and panic containment apply")
								break
							}
						}
					}
					if id, ok := unparen(call.Fun).(*ast.Ident); ok {
						if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
							for _, arg := range call.Args[1:] {
								if tainted(arg) {
									pass.Reportf(call.Pos(), "make() sized by untrusted input without a bound check; compare the size against a limit (or the bytes actually present) first")
									break
								}
							}
						}
					}
				},
			})
		}
	}
}

// seedByteParams taints fd's parameters whose type is []byte or [][]byte.
func seedByteParams(info *types.Info, fd *ast.FuncDecl, st State) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if isByteSliceDeep(obj.Type()) {
				st[obj] = true
			}
		}
	}
}

// isByteSliceDeep matches []byte and [][]byte (and deeper nestings).
func isByteSliceDeep(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if basic, ok := sl.Elem().Underlying().(*types.Basic); ok {
		return basic.Kind() == types.Byte
	}
	return isByteSliceDeep(sl.Elem())
}
