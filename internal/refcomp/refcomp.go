// Package refcomp implements vertical-mode (reference-based) DNA
// compression in the style the paper surveys (§III.B and Wandelt & Leser's
// adaptive genome compression, its reference for the 1:400 ratios on the
// 1000-genomes data) and names as future work ("how vertical sequences can
// be compress[ed] using horizontal algorithms by measuring their
// tradeoffs").
//
// A target sequence is encoded against a reference known to both sides as a
// stream of two entry kinds:
//
//   - relative match RM(pos, len): the target copies the reference at pos
//     for len bases. Positions are sent as zig-zag deltas from the end of
//     the previous match, which makes the near-diagonal alignment of a
//     same-species target almost free — the adaptive equivalent of the
//     original scheme's block-change (BC) entries.
//   - raw R(run): a literal run coded through an order-2 context model —
//     the "no good matching block" escape.
//
// On 99.9 %-identical targets (the intra-species similarity the paper
// cites) the encoding approaches a few hundredths of a bit per base.
package refcomp

import (
	"encoding/binary"
	"fmt"

	"github.com/srl-nuces/ctxdna/internal/arith"
	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/seq"
)

// Config tunes the compressor. Zero values select defaults.
type Config struct {
	// AnchorK is the reference index k-mer length (default 16).
	AnchorK int
	// MinMatch is the shortest reference match worth an RM entry
	// (default 24).
	MinMatch int
	// MaxChain bounds candidate positions examined per anchor (default 16).
	MaxChain int
}

func (cfg Config) withDefaults() Config {
	if cfg.AnchorK == 0 {
		cfg.AnchorK = 16
	}
	if cfg.MinMatch == 0 {
		cfg.MinMatch = 24
	}
	if cfg.MinMatch < cfg.AnchorK {
		cfg.MinMatch = cfg.AnchorK
	}
	if cfg.MaxChain == 0 {
		cfg.MaxChain = 16
	}
	return cfg
}

// Compressor holds an indexed reference. Build once, compress many targets
// against it (the paper's exchange scenario: both ends hold the reference
// genome, only differences travel).
type Compressor struct {
	cfg   Config
	ref   []byte
	index map[uint64][]int32
}

// New indexes the reference (symbol codes 0..3).
func New(ref []byte, cfg Config) (*Compressor, error) {
	cfg = cfg.withDefaults()
	if cfg.AnchorK < 8 || cfg.AnchorK > 31 {
		return nil, fmt.Errorf("refcomp: AnchorK %d outside [8,31]", cfg.AnchorK)
	}
	if !seq.Valid(ref) {
		return nil, fmt.Errorf("refcomp: reference contains non-nucleotide symbols")
	}
	c := &Compressor{cfg: cfg, ref: ref, index: make(map[uint64][]int32, len(ref))}
	if len(ref) >= cfg.AnchorK {
		var kmer uint64
		mask := uint64(1)<<(2*cfg.AnchorK) - 1
		for i, b := range ref {
			kmer = (kmer<<2 | uint64(b)) & mask
			if i >= cfg.AnchorK-1 {
				start := int32(i - cfg.AnchorK + 1)
				c.index[kmer] = append(c.index[kmer], start)
			}
		}
	}
	return c, nil
}

// RefLen reports the reference length in bases.
func (c *Compressor) RefLen() int { return len(c.ref) }

// MemoryFootprint approximates the index size in bytes.
func (c *Compressor) MemoryFootprint() int {
	total := len(c.ref)
	for _, v := range c.index {
		total += 16 + 4*len(v)
	}
	return total
}

func zigzag(v int) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int {
	return int(u>>1) ^ -int(u&1)
}

// findMatch returns the longest reference match for target[i:], preferring
// candidates closest to expectPos (the near-diagonal continuation).
func (c *Compressor) findMatch(target []byte, i, expectPos int) (pos, length int) {
	k := c.cfg.AnchorK
	if i+k > len(target) {
		return 0, 0
	}
	var kmer uint64
	for j := 0; j < k; j++ {
		kmer = kmer<<2 | uint64(target[i+j])
	}
	cands := c.index[kmer]
	if len(cands) == 0 {
		return 0, 0
	}
	bestLen, bestPos, bestDist := 0, 0, int(^uint(0)>>1)
	checked := 0
	// Walk newest-last; prefer the diagonal candidate on length ties.
	for idx := len(cands) - 1; idx >= 0 && checked < c.cfg.MaxChain; idx-- {
		checked++
		p := int(cands[idx])
		l := k
		for i+l < len(target) && p+l < len(c.ref) && target[i+l] == c.ref[p+l] {
			l++
		}
		dist := p - expectPos
		if dist < 0 {
			dist = -dist
		}
		if l > bestLen || (l == bestLen && dist < bestDist) {
			bestLen, bestPos, bestDist = l, p, dist
		}
	}
	return bestPos, bestLen
}

// Compress encodes target against the reference.
func (c *Compressor) Compress(target []byte) ([]byte, compress.Stats, error) {
	if !seq.Valid(target) {
		return nil, compress.Stats{}, compress.Corruptf("refcomp: target contains non-nucleotide symbols")
	}
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(target)))

	flag := arith.NewProb()
	posM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	runM := arith.NewUintModel()
	lit := arith.NewSymbolModel(2)
	enc := arith.NewEncoder(len(target)/16 + 64)

	var matches, rawBases int64
	expect := 0
	i := 0
	flushRaw := func(run []byte) {
		if len(run) == 0 {
			return
		}
		enc.EncodeBit(&flag, 0)
		runM.Encode(enc, uint64(len(run)-1))
		for _, b := range run {
			lit.Encode(enc, b)
		}
		rawBases += int64(len(run))
	}
	var pendingRaw []byte
	for i < len(target) {
		pos, l := c.findMatch(target, i, expect)
		if l >= c.cfg.MinMatch {
			flushRaw(pendingRaw)
			pendingRaw = pendingRaw[:0]
			enc.EncodeBit(&flag, 1)
			posM.Encode(enc, zigzag(pos-expect))
			lenM.Encode(enc, uint64(l-c.cfg.MinMatch))
			for t := 0; t < l; t++ {
				lit.Observe(target[i+t])
			}
			matches++
			i += l
			expect = pos + l
			continue
		}
		pendingRaw = append(pendingRaw, target[i])
		i++
		expect++ // a raw base usually means a SNP/insert: stay near-diagonal
	}
	flushRaw(pendingRaw)
	payload := enc.Finish()
	out := make([]byte, 0, hn+len(payload))
	out = append(out, hdr[:hn]...)
	out = append(out, payload...)
	st := compress.Stats{
		WorkNS:  int64(40*float64(len(target)) + 300*float64(matches) + 55*float64(rawBases)),
		PeakMem: c.MemoryFootprint() + len(target) + len(out),
	}
	return out, st, nil
}

// Decompress restores a target from its reference-relative encoding. The
// Compressor must hold the same reference used to compress.
func (c *Compressor) Decompress(data []byte) ([]byte, compress.Stats, error) {
	nBases, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, compress.Stats{}, compress.Corruptf("refcomp: bad length header")
	}
	if nBases > 1<<34 {
		return nil, compress.Stats{}, compress.Corruptf("refcomp: implausible length %d", nBases)
	}
	flag := arith.NewProb()
	posM := arith.NewUintModel()
	lenM := arith.NewUintModel()
	runM := arith.NewUintModel()
	lit := arith.NewSymbolModel(2)
	dec := arith.NewDecoder(data[used:])

	out := make([]byte, 0, nBases)
	expect := 0
	var matches, rawBases int64
	for uint64(len(out)) < nBases {
		if dec.DecodeBit(&flag) == 1 {
			pos := expect + unzigzag(posM.Decode(dec))
			l := int(lenM.Decode(dec)) + c.cfg.MinMatch
			if pos < 0 || l <= 0 || pos+l > len(c.ref) || uint64(len(out))+uint64(l) > nBases {
				return nil, compress.Stats{}, compress.Corruptf("refcomp: RM(%d,%d) outside reference", pos, l)
			}
			for t := 0; t < l; t++ {
				b := c.ref[pos+t]
				out = append(out, b)
				lit.Observe(b)
			}
			matches++
			expect = pos + l
			continue
		}
		run := int(runM.Decode(dec)) + 1
		if uint64(len(out))+uint64(run) > nBases {
			return nil, compress.Stats{}, compress.Corruptf("refcomp: raw run %d overruns output", run)
		}
		for j := 0; j < run; j++ {
			out = append(out, lit.Decode(dec))
		}
		rawBases += int64(run)
		expect += run
	}
	st := compress.Stats{
		WorkNS:  int64(10*float64(len(out)) + 300*float64(matches) + 55*float64(rawBases)),
		PeakMem: len(c.ref) + len(data) + int(nBases),
	}
	return out, st, nil
}
