package refcomp

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"
)

func reference(t testing.TB, n int, seed int64) []byte {
	t.Helper()
	p := synth.Profile{Length: n, GC: 0.42, RepeatProb: 0.001, RepeatMin: 20, RepeatMax: 300,
		MutationRate: 0.02, LocalOrder: 3, LocalBias: 0.7}
	return p.Generate(seed)
}

// mutate produces a target that differs from ref by the given substitution
// rate plus occasional short indels.
func mutate(ref []byte, subRate, indelRate float64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, len(ref)+16)
	for i := 0; i < len(ref); i++ {
		switch {
		case rng.Float64() < indelRate/2: // deletion
			continue
		case rng.Float64() < indelRate/2: // insertion
			out = append(out, byte(rng.Intn(4)))
			out = append(out, ref[i])
		case rng.Float64() < subRate:
			out = append(out, (ref[i]+byte(1+rng.Intn(3)))&3)
		default:
			out = append(out, ref[i])
		}
	}
	return out
}

func roundTrip(t *testing.T, c *Compressor, target []byte) int {
	t.Helper()
	data, st, err := c.Compress(target)
	if err != nil {
		t.Fatal(err)
	}
	if st.WorkNS < 0 || st.PeakMem <= 0 {
		t.Fatalf("bad stats %+v", st)
	}
	restored, _, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, target) {
		t.Fatalf("round trip mismatch: %d vs %d bases", len(restored), len(target))
	}
	return len(data)
}

func TestIdenticalTargetNearFree(t *testing.T) {
	ref := reference(t, 200000, 1)
	c, err := New(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	size := roundTrip(t, c, ref)
	bpb := compress.Ratio(len(ref), size)
	t.Logf("identical target: %d bytes (%.5f bits/base)", size, bpb)
	if bpb > 0.01 {
		t.Fatalf("identical target cost %.5f bits/base, want ~free", bpb)
	}
}

func TestSNPTarget(t *testing.T) {
	// The paper's 99.9 % intra-species similarity: 0.1 % substitutions.
	ref := reference(t, 200000, 2)
	target := mutate(ref, 0.001, 0, 3)
	c, err := New(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	size := roundTrip(t, c, target)
	bpb := compress.Ratio(len(target), size)
	ratioVsASCII := float64(len(target)) / float64(size) // 1 byte per base raw
	t.Logf("0.1%% SNP target: %d bytes (%.4f bits/base, %.0f:1 vs ASCII)", size, bpb, ratioVsASCII)
	if bpb > 0.08 {
		t.Fatalf("SNP target cost %.4f bits/base, want < 0.08 (paper cites ~1:400)", bpb)
	}
	if ratioVsASCII < 100 {
		t.Fatalf("reference ratio only %.0f:1", ratioVsASCII)
	}
}

func TestIndelTarget(t *testing.T) {
	ref := reference(t, 150000, 4)
	target := mutate(ref, 0.001, 0.0005, 5)
	c, err := New(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	size := roundTrip(t, c, target)
	bpb := compress.Ratio(len(target), size)
	t.Logf("SNP+indel target: %.4f bits/base", bpb)
	if bpb > 0.2 {
		t.Fatalf("indel target cost %.4f bits/base, want < 0.2", bpb)
	}
}

func TestUnrelatedTargetFallsBackToLiterals(t *testing.T) {
	ref := reference(t, 50000, 6)
	unrelated := synth.Profile{Length: 50000, GC: 0.5}.Generate(7)
	c, err := New(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	size := roundTrip(t, c, unrelated)
	bpb := compress.Ratio(len(unrelated), size)
	t.Logf("unrelated target: %.3f bits/base", bpb)
	if bpb > 2.1 {
		t.Fatalf("unrelated fallback cost %.3f bits/base — literal escape broken", bpb)
	}
}

func TestSmallAndEmptyTargets(t *testing.T) {
	ref := reference(t, 10000, 8)
	c, err := New(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, c, nil)
	roundTrip(t, c, ref[:1])
	roundTrip(t, c, ref[:40])
	roundTrip(t, c, ref[5000:5100])
}

func TestEmptyReference(t *testing.T) {
	c, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	target := synth.Profile{Length: 5000, GC: 0.5}.Generate(9)
	size := roundTrip(t, c, target)
	if compress.Ratio(len(target), size) > 2.2 {
		t.Fatal("empty reference should degrade to ~literal coding")
	}
}

func TestRejectsInvalidInputs(t *testing.T) {
	if _, err := New([]byte{0, 9}, Config{}); err == nil {
		t.Fatal("invalid reference accepted")
	}
	if _, err := New(nil, Config{AnchorK: 40}); err == nil {
		t.Fatal("oversized AnchorK accepted")
	}
	c, err := New([]byte{0, 1, 2, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Compress([]byte{0, 9}); err == nil {
		t.Fatal("invalid target accepted")
	}
	if _, _, err := c.Decompress(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestDecompressNeedsMatchingReference(t *testing.T) {
	refA := reference(t, 30000, 10)
	refB := reference(t, 30000, 11)
	ca, err := New(refA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := New(refB, Config{})
	if err != nil {
		t.Fatal(err)
	}
	target := mutate(refA, 0.001, 0, 12)
	data, _, err := ca.Compress(target)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := cb.Decompress(data)
	if err == nil && bytes.Equal(restored, target) {
		t.Fatal("decompression with the wrong reference cannot succeed")
	}
}

func BenchmarkCompressSNPTarget(b *testing.B) {
	ref := reference(b, 1<<20, 13)
	target := mutate(ref, 0.001, 0, 14)
	c, err := New(ref, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(target)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Compress(target); err != nil {
			b.Fatal(err)
		}
	}
}
