// Cloudexchange walks the paper's Figure 1 end to end: a client gathers its
// context, the inference engine picks the codec, the sequence is compressed
// and uploaded to the (simulated) Azure Blob store, then the cloud VM
// downloads and decompresses it. The same exchange is repeated with every
// fixed codec to show what the context-aware choice saved. A final pass
// repeats the selected exchange against a fault-injected store to show the
// retry policy riding out transient storage failures.
//
//	go run ./examples/cloudexchange
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

func main() {
	// 1. Train the inference engine on a compact experiment grid.
	fmt.Println("training selection rules on a compact grid...")
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 32, MinSize: 2 << 10, MaxSize: 256 << 10, Seed: 2015})
	grid, err := experiment.Run(files, cloud.Grid(), []string{"ctw", "dnax", "gencompress", "gzip"}, experiment.DefaultNoise())
	if err != nil {
		log.Fatal(err)
	}
	train, test := grid.Split()
	tree, acc, err := experiment.TrainEval(train, test, experiment.MethodCART, core.TimeOnlyWeights(), dtree.Config{})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := core.NewInferenceEngine(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CART rules trained (held-out accuracy %.1f%%)\n\n", 100*acc)

	// 2. Exchange three differently-sized sequences from a slow client.
	client := cloud.VM{Name: "lab-vm", RAMMB: 2048, CPUMHz: 2000, BandwidthMbps: 2}
	store := cloud.NewBlobStore()
	if err := store.CreateContainer("sequences"); err != nil {
		log.Fatal(err)
	}
	profile := synth.Profile{GC: 0.4, RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400,
		RCFraction: 0.2, MutationRate: 0.03, LocalOrder: 3, LocalBias: 0.8}

	for _, sizeKB := range []int{10, 40, 200} {
		profile.Length = sizeKB << 10
		sequence := profile.Generate(int64(sizeKB))
		ctx := core.GatherContext(client, len(sequence))
		choice := engine.SelectCodec(ctx)
		fmt.Printf("file %4d KB on %s: inference engine selects %q\n", sizeKB, client.Name, choice)

		best, worst := "", ""
		bestMS, worstMS := 0.0, 0.0
		for _, codec := range []string{"ctw", "dnax", "gencompress", "gzip"} {
			rep, err := core.Exchange(store, "sequences", fmt.Sprintf("%dkb-%s", sizeKB, codec), client, codec, sequence)
			if err != nil {
				log.Fatalf("%s: %v", codec, err)
			}
			total := rep.Measurement.TotalTimeMS()
			marker := "  "
			if codec == choice {
				marker = "->"
			}
			fmt.Printf("  %s %-12s total %8.1f ms (compress %7.1f, upload %6.1f, download %5.1f, decompress %6.1f) %6.3f bits/base\n",
				marker, codec, total, rep.Measurement.CompressMS, rep.Measurement.UploadMS,
				rep.Measurement.DownloadMS, rep.Measurement.DecompressMS, rep.BitsPerBase)
			if best == "" || total < bestMS {
				best, bestMS = codec, total
			}
			if worst == "" || total > worstMS {
				worst, worstMS = codec, total
			}
		}
		verdict := "optimal"
		if choice != best {
			verdict = fmt.Sprintf("best was %s", best)
		}
		fmt.Printf("  selection %s; worst (%s) would have cost %.1fx more\n\n", verdict, worst, worstMS/bestMS)
	}

	// 3. The same exchange over an unreliable link: a fault-injected store
	// drops 30 % of storage ops with transient errors; the retry policy's
	// capped exponential backoff (deterministic jitter, seeded like the
	// faults) still lands every blob byte-identically.
	fmt.Println("re-running the exchanges over a faulty store (30 % transient failures)...")
	faulty := cloud.NewFaultyStore(cloud.NewBlobStore(), cloud.FaultConfig{Rate: 0.3, Seed: 2015})
	for _, sizeKB := range []int{10, 40, 200} {
		profile.Length = sizeKB << 10
		sequence := profile.Generate(int64(sizeKB))
		choice := engine.SelectCodec(core.GatherContext(client, len(sequence)))
		rep, err := cloud.Exchange(context.Background(), client, faulty, choice, sequence, cloud.ExchangeOptions{
			Container: "sequences",
			Blob:      fmt.Sprintf("%dkb-faulty", sizeKB),
			Retry:     cloud.DefaultRetryPolicy(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d KB via %-11s %d attempt(s), %.1f ms modeled backoff — round trip verified\n",
			sizeKB, choice+":", rep.AttemptCount(), rep.RetryWaitMS)
		for _, tr := range rep.Traces {
			if tr.Attempts > 1 {
				fmt.Printf("         %-6s needed %d attempts; backoff schedule (ms):", tr.Op, tr.Attempts)
				for _, b := range tr.BackoffMS {
					fmt.Printf(" %.1f", b)
				}
				fmt.Println()
			}
		}
	}
	ops, injected := faulty.Counters()
	fmt.Printf("  store injected %d transient faults over %d ops; every blob landed byte-identical\n", injected, ops)
}
