// Quickstart: compress and decompress a DNA sequence with every registered
// codec and compare ratios and modeled costs.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnacompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
	_ "github.com/srl-nuces/ctxdna/internal/compress/xm"
)

func main() {
	// A bacterial-like 100 KB sequence: sparse repeats, some of them
	// reverse-complement, point mutations, mild hexamer bias.
	profile := synth.Profile{
		Name: "demo", Length: 100_000, GC: 0.42,
		RepeatProb: 0.0015, RepeatMin: 20, RepeatMax: 400,
		RCFraction: 0.2, MutationRate: 0.03,
		LocalOrder: 3, LocalBias: 0.8,
	}
	sequence := profile.Generate(42)
	fmt.Printf("input: %d bases (GC-rich demo sequence)\n\n", len(sequence))
	fmt.Printf("%-12s %12s %10s %14s %14s %10s\n",
		"codec", "bytes", "bits/base", "compress(ms)", "decompress(ms)", "peak(MB)")

	for _, name := range compress.Names() {
		codec, err := compress.New(name)
		if err != nil {
			log.Fatal(err)
		}
		data, cst, err := codec.Compress(sequence)
		if err != nil {
			log.Fatalf("%s: compress: %v", name, err)
		}
		restored, dst, err := codec.Decompress(data)
		if err != nil {
			log.Fatalf("%s: decompress: %v", name, err)
		}
		if !bytes.Equal(restored, sequence) {
			log.Fatalf("%s: round trip mismatch", name)
		}
		fmt.Printf("%-12s %12d %10.3f %14.1f %14.1f %10.1f\n",
			name, len(data), compress.Ratio(len(sequence), len(data)),
			float64(cst.WorkNS)/1e6, float64(dst.WorkNS)/1e6,
			float64(cst.PeakMem)/(1<<20))
	}
	fmt.Println("\n(times are modeled single-core milliseconds on the paper's 2.4 GHz reference)")
}
