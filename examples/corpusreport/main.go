// Corpusreport compresses the standard DNA benchmark corpus (the paper's
// §IV.A dataset, regenerated synthetically at the published sizes) with
// every codec and prints the classic bits-per-base table found throughout
// the DNA compression literature.
//
//	go run ./examples/corpusreport
package main

import (
	"fmt"
	"log"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/biocompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnacompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnapack"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
	_ "github.com/srl-nuces/ctxdna/internal/compress/twobit"
	_ "github.com/srl-nuces/ctxdna/internal/compress/xm"
)

func main() {
	codecs := []string{"xm", "gencompress", "dnacompress", "dnapack", "biocompress", "dnax", "ctw", "gzip", "twobit"}
	fmt.Printf("%-10s %8s", "file", "bases")
	for _, c := range codecs {
		fmt.Printf(" %12s", c)
	}
	fmt.Println()

	sums := make([]float64, len(codecs))
	profiles := synth.Benchmark()
	for _, p := range profiles {
		sequence := p.Generate(2015)
		fmt.Printf("%-10s %8d", p.Name, len(sequence))
		for ci, name := range codecs {
			codec, err := compress.New(name)
			if err != nil {
				log.Fatal(err)
			}
			data, _, err := codec.Compress(sequence)
			if err != nil {
				log.Fatalf("%s on %s: %v", name, p.Name, err)
			}
			bpb := compress.Ratio(len(sequence), len(data))
			sums[ci] += bpb
			fmt.Printf(" %12.3f", bpb)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s %8s", "average", "")
	for ci := range codecs {
		fmt.Printf(" %12.3f", sums[ci]/float64(len(profiles)))
	}
	fmt.Println("\n\n(bits per base; 2.000 = uncompressed 2-bit packing)")
}
