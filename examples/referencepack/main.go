// Referencepack demonstrates vertical-mode (reference-based) compression —
// the paper's future-work direction: both ends of the exchange hold a
// reference genome and only differences travel. Compare the horizontal
// codecs against refcomp on a 99.9 %-identical resequenced sample.
//
//	go run ./examples/referencepack
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/srl-nuces/ctxdna/internal/compress"
	"github.com/srl-nuces/ctxdna/internal/refcomp"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

func main() {
	// The shared reference: a 1 MB bacterial-like genome.
	refProfile := synth.Profile{Length: 1 << 20, GC: 0.42, RepeatProb: 0.001, RepeatMin: 20, RepeatMax: 300,
		MutationRate: 0.02, LocalOrder: 3, LocalBias: 0.7}
	ref := refProfile.Generate(1)

	// The sample to exchange: the reference with 0.1 % substitutions (the
	// intra-species variation the paper cites in §II.B).
	rng := rand.New(rand.NewSource(2))
	sample := append([]byte{}, ref...)
	snps := 0
	for i := range sample {
		if rng.Float64() < 0.001 {
			sample[i] = (sample[i] + byte(1+rng.Intn(3))) & 3
			snps++
		}
	}
	fmt.Printf("reference: %d bases; sample: %d bases with %d SNPs (%.2f%%)\n\n",
		len(ref), len(sample), snps, 100*float64(snps)/float64(len(sample)))

	fmt.Printf("%-22s %12s %12s %12s\n", "method", "bytes", "bits/base", "vs ASCII")
	for _, name := range []string{"gzip", "dnax", "gencompress"} {
		codec, err := compress.New(name)
		if err != nil {
			log.Fatal(err)
		}
		data, _, err := codec.Compress(sample)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12d %12.4f %9.0f:1\n",
			"horizontal/"+name, len(data), compress.Ratio(len(sample), len(data)),
			float64(len(sample))/float64(len(data)))
	}

	rc, err := refcomp.New(ref, refcomp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	data, _, err := rc.Compress(sample)
	if err != nil {
		log.Fatal(err)
	}
	restored, _, err := rc.Decompress(data)
	if err != nil {
		log.Fatal(err)
	}
	for i := range restored {
		if restored[i] != sample[i] {
			log.Fatalf("round trip mismatch at %d", i)
		}
	}
	fmt.Printf("%-22s %12d %12.4f %9.0f:1\n",
		"vertical/refcomp", len(data), compress.Ratio(len(sample), len(data)),
		float64(len(sample))/float64(len(data)))
	fmt.Println("\n(the paper's §III cites ~1:400 for reference-based compression of 1000-genomes data)")
}
