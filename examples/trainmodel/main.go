// Trainmodel reproduces the paper's learning phase: it builds the
// experiment grid, labels it with Eq. 1, trains CHAID and CART, prints the
// induced rules (the paper's "rules generated") and the accuracy comparison,
// including the sub-50 KB gap analysis of Figures 9-12.
//
//	go run ./examples/trainmodel
package main

import (
	"fmt"
	"log"

	"github.com/srl-nuces/ctxdna/internal/cloud"
	"github.com/srl-nuces/ctxdna/internal/core"
	"github.com/srl-nuces/ctxdna/internal/dtree"
	"github.com/srl-nuces/ctxdna/internal/experiment"
	"github.com/srl-nuces/ctxdna/internal/synth"

	_ "github.com/srl-nuces/ctxdna/internal/compress/ctw"
	_ "github.com/srl-nuces/ctxdna/internal/compress/dnax"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gencompress"
	_ "github.com/srl-nuces/ctxdna/internal/compress/gzipx"
)

func main() {
	fmt.Println("building the experiment grid (40 files x 32 contexts x 4 codecs)...")
	files := synth.ExperimentCorpus(synth.CorpusSpec{NumFiles: 40, MinSize: 2 << 10, MaxSize: 256 << 10, Seed: 2015})
	grid, err := experiment.Run(files, cloud.Grid(), []string{"ctw", "dnax", "gencompress", "gzip"}, experiment.DefaultNoise())
	if err != nil {
		log.Fatal(err)
	}

	counts := grid.LabelCounts(core.TimeOnlyWeights())
	fmt.Printf("\nEq. 1 labels (equal time weights): %v\n", counts)
	fmt.Printf("note: gzip label count = %d — the paper: \"there were no records where Gzip was used as label\"\n", counts["gzip"])

	train, test := grid.Split()
	fmt.Printf("split: %d training files, %d test files (%d test rows)\n\n",
		len(train.Files), len(test.Files), len(test.Rows))

	for _, method := range []string{experiment.MethodCHAID, experiment.MethodCART} {
		v, err := experiment.Validate(train, test, method, core.TimeOnlyWeights(), dtree.Config{})
		if err != nil {
			log.Fatal(err)
		}
		below, total := v.GapsBelow(50)
		fmt.Printf("=== %s (time labels) ===\n", method)
		fmt.Printf("Accuracy = %.4f; %d gaps, %d of them below 50 KB\n", v.Accuracy, total, below)
		fmt.Print(v.Tree.String())
		fmt.Println()
	}

	// The RAM story: labels driven by measured RAM are barely learnable.
	for _, method := range []string{experiment.MethodCHAID, experiment.MethodCART} {
		_, acc, err := experiment.TrainEval(train, test, method, core.RAMOnlyWeights(), dtree.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on RAM labels: accuracy %.4f (paper: 0.33-0.36 — \"RAM used cannot be predicted based on given context\")\n", method, acc)
	}
}
